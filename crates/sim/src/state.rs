//! Typed, versioned component state for checkpoint/restore.
//!
//! Every ticked component can externalize its mutable state as a
//! [`StateBlob`] — a tagged, versioned list of named, typed fields —
//! and later restore itself from one
//! ([`crate::Component::save_state`] /
//! [`crate::Component::restore_state`]). The format is deliberately
//! structured rather than a serde free-for-all:
//!
//! * Every blob carries a **tag** (the component kind that wrote it)
//!   and a **version** number. Restore verifies both before touching
//!   any field, so a blob from the wrong component kind — or from an
//!   older layout of the same kind — fails loudly instead of silently
//!   misinterpreting bytes.
//! * Fields are name/value pairs over a closed set of value shapes
//!   ([`StateValue`]). Typed accessors return [`StateError`] on a
//!   missing field or a shape mismatch, naming the blob and field.
//! * Bulk memory (DDR contents, the SD card image) travels as
//!   [`StateValue::Bytes`] behind an `Arc`, so cloning a whole-system
//!   checkpoint — the warm-boot fork path of the host-perf harness —
//!   never copies megabytes.
//!
//! On top of the per-component blobs, [`SimState`] is the
//! whole-simulator checkpoint captured by
//! [`crate::Simulator::checkpoint`]: the cycle, every component's blob
//! plus its kernel tick accounting, the sanitizer's observation state,
//! and the kernel's policy counters. [`SimState::parity_diff`] defines
//! *replay parity*: two states are equivalent when their cycle,
//! component state, tick accounting and sanitizer verdicts all match —
//! scheduler policy counters (jump/fusion bookkeeping) are excluded,
//! because a restored run legitimately re-plans its jumps from a cold
//! scheduler while producing bit-identical simulated behavior.

use std::fmt;
use std::sync::Arc;

use crate::time::Cycle;

/// One field value inside a [`StateBlob`]. A closed set of shapes —
/// components pick the narrowest one that fits, and the typed
/// accessors on [`StateBlob`] enforce the shape on the way back out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateValue {
    /// A flag.
    Bool(bool),
    /// An unsigned counter, cycle number, register value, or small id.
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// An optional cycle/counter (`None` ≠ 0 — FIFO rate marks and
    /// busy-until deadlines genuinely distinguish "never" from "at 0").
    OptU64(Option<u64>),
    /// A short identifying string (an RM name, a channel name).
    Str(String),
    /// Bulk byte memory, shared — cloning a checkpoint is O(1) per
    /// memory, which is what makes warm-boot forking cheap.
    Bytes(Arc<Vec<u8>>),
    /// A word buffer (configuration frames, FIFO word queues).
    Words(Vec<u32>),
    /// An ordered sequence of values (FIFO queues, pipelines).
    List(Vec<StateValue>),
    /// A nested blob (sub-structures with their own tag/version).
    Blob(Box<StateBlob>),
}

impl StateValue {
    /// Borrow this value as a nested blob, or fail with a
    /// [`StateError::Structure`] attributed to `ctx` — the common first
    /// step when decoding list elements that carry sub-structures.
    pub fn as_blob(&self, ctx: &str) -> Result<&StateBlob, StateError> {
        match self {
            StateValue::Blob(b) => Ok(b),
            other => Err(StateError::Structure {
                tag: ctx.into(),
                detail: format!("value is {}, expected blob", other.kind()),
            }),
        }
    }

    /// Short shape name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            StateValue::Bool(_) => "bool",
            StateValue::U64(_) => "u64",
            StateValue::I64(_) => "i64",
            StateValue::OptU64(_) => "opt-u64",
            StateValue::Str(_) => "str",
            StateValue::Bytes(_) => "bytes",
            StateValue::Words(_) => "words",
            StateValue::List(_) => "list",
            StateValue::Blob(_) => "blob",
        }
    }
}

/// Why a save/restore failed. Restore paths fail loudly and
/// specifically: checkpointing is a debugging tool, and a vague error
/// in the tool is worse than the bug being chased.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The component does not implement checkpointing.
    Unsupported {
        /// Component instance name.
        component: String,
    },
    /// A blob's tag was not the one the restorer expected.
    TagMismatch {
        /// Expected tag.
        want: String,
        /// Tag found in the blob.
        got: String,
    },
    /// A blob's layout version was not the one the restorer expects.
    VersionMismatch {
        /// Blob tag.
        tag: String,
        /// Version the restorer implements.
        want: u32,
        /// Version found in the blob.
        got: u32,
    },
    /// A named field was absent.
    MissingField {
        /// Blob tag.
        tag: String,
        /// Field name.
        field: String,
    },
    /// A named field had the wrong shape.
    TypeMismatch {
        /// Blob tag.
        tag: String,
        /// Field name.
        field: String,
        /// Shape the accessor expected.
        expected: &'static str,
        /// Shape actually present.
        got: &'static str,
    },
    /// The state does not fit the restoring structure (wrong component
    /// count, wrong channel name, wrong element count, …).
    Structure {
        /// Blob tag (or "simulator" for whole-checkpoint problems).
        tag: String,
        /// Human-readable evidence.
        detail: String,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Unsupported { component } => {
                write!(
                    f,
                    "component {component} does not support checkpoint/restore"
                )
            }
            StateError::TagMismatch { want, got } => {
                write!(f, "state blob tagged {got}, expected {want}")
            }
            StateError::VersionMismatch { tag, want, got } => {
                write!(
                    f,
                    "{tag} state version {got}, this build restores version {want}"
                )
            }
            StateError::MissingField { tag, field } => {
                write!(f, "{tag} state is missing field {field}")
            }
            StateError::TypeMismatch {
                tag,
                field,
                expected,
                got,
            } => write!(f, "{tag} field {field} is {got}, expected {expected}"),
            StateError::Structure { tag, detail } => write!(f, "{tag} state mismatch: {detail}"),
        }
    }
}

impl std::error::Error for StateError {}

/// A tagged, versioned bag of named, typed state fields — the unit of
/// component checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateBlob {
    tag: String,
    version: u32,
    fields: Vec<(String, StateValue)>,
}

impl StateBlob {
    /// An empty blob for component kind `tag`, layout `version`.
    pub fn new(tag: impl Into<String>, version: u32) -> Self {
        StateBlob {
            tag: tag.into(),
            version,
            fields: Vec::new(),
        }
    }

    /// The component kind that wrote this blob.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The layout version the writer used.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Verify tag and version before reading any field — the first
    /// call of every restore path.
    pub fn expect(&self, tag: &str, version: u32) -> Result<(), StateError> {
        if self.tag != tag {
            return Err(StateError::TagMismatch {
                want: tag.into(),
                got: self.tag.clone(),
            });
        }
        if self.version != version {
            return Err(StateError::VersionMismatch {
                tag: tag.into(),
                want: version,
                got: self.version,
            });
        }
        Ok(())
    }

    /// Append a field. Field names are unique by convention (the typed
    /// getters return the first match).
    pub fn put(&mut self, field: impl Into<String>, value: StateValue) {
        self.fields.push((field.into(), value));
    }

    /// Append a [`StateValue::Bool`] field.
    pub fn put_bool(&mut self, field: impl Into<String>, v: bool) {
        self.put(field, StateValue::Bool(v));
    }

    /// Append a [`StateValue::U64`] field.
    pub fn put_u64(&mut self, field: impl Into<String>, v: u64) {
        self.put(field, StateValue::U64(v));
    }

    /// Append a [`StateValue::I64`] field.
    pub fn put_i64(&mut self, field: impl Into<String>, v: i64) {
        self.put(field, StateValue::I64(v));
    }

    /// Append a [`StateValue::OptU64`] field.
    pub fn put_opt_u64(&mut self, field: impl Into<String>, v: Option<u64>) {
        self.put(field, StateValue::OptU64(v));
    }

    /// Append a [`StateValue::Str`] field.
    pub fn put_str(&mut self, field: impl Into<String>, v: impl Into<String>) {
        self.put(field, StateValue::Str(v.into()));
    }

    /// Append a [`StateValue::Bytes`] field (shared, O(1) to clone).
    pub fn put_bytes(&mut self, field: impl Into<String>, v: Arc<Vec<u8>>) {
        self.put(field, StateValue::Bytes(v));
    }

    /// Append a [`StateValue::Words`] field.
    pub fn put_words(&mut self, field: impl Into<String>, v: Vec<u32>) {
        self.put(field, StateValue::Words(v));
    }

    /// Append a [`StateValue::List`] field.
    pub fn put_list(&mut self, field: impl Into<String>, v: Vec<StateValue>) {
        self.put(field, StateValue::List(v));
    }

    /// Append a nested [`StateValue::Blob`] field.
    pub fn put_blob(&mut self, field: impl Into<String>, v: StateBlob) {
        self.put(field, StateValue::Blob(Box::new(v)));
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when no fields were written.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate the fields in insertion order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &StateValue)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Raw field lookup.
    pub fn get(&self, field: &str) -> Result<&StateValue, StateError> {
        self.fields
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, v)| v)
            .ok_or_else(|| StateError::MissingField {
                tag: self.tag.clone(),
                field: field.into(),
            })
    }

    fn mismatch(&self, field: &str, expected: &'static str, got: &StateValue) -> StateError {
        StateError::TypeMismatch {
            tag: self.tag.clone(),
            field: field.into(),
            expected,
            got: got.kind(),
        }
    }

    /// Read a [`StateValue::Bool`] field.
    pub fn get_bool(&self, field: &str) -> Result<bool, StateError> {
        match self.get(field)? {
            StateValue::Bool(v) => Ok(*v),
            other => Err(self.mismatch(field, "bool", other)),
        }
    }

    /// Read a [`StateValue::U64`] field.
    pub fn get_u64(&self, field: &str) -> Result<u64, StateError> {
        match self.get(field)? {
            StateValue::U64(v) => Ok(*v),
            other => Err(self.mismatch(field, "u64", other)),
        }
    }

    /// Read a [`StateValue::U64`] field that must fit `u32`.
    pub fn get_u32(&self, field: &str) -> Result<u32, StateError> {
        let v = self.get_u64(field)?;
        u32::try_from(v).map_err(|_| StateError::Structure {
            tag: self.tag.clone(),
            detail: format!("field {field} value {v} does not fit u32"),
        })
    }

    /// Read a [`StateValue::I64`] field.
    pub fn get_i64(&self, field: &str) -> Result<i64, StateError> {
        match self.get(field)? {
            StateValue::I64(v) => Ok(*v),
            other => Err(self.mismatch(field, "i64", other)),
        }
    }

    /// Read a [`StateValue::OptU64`] field.
    pub fn get_opt_u64(&self, field: &str) -> Result<Option<u64>, StateError> {
        match self.get(field)? {
            StateValue::OptU64(v) => Ok(*v),
            other => Err(self.mismatch(field, "opt-u64", other)),
        }
    }

    /// Read a [`StateValue::Str`] field.
    pub fn get_str(&self, field: &str) -> Result<&str, StateError> {
        match self.get(field)? {
            StateValue::Str(v) => Ok(v),
            other => Err(self.mismatch(field, "str", other)),
        }
    }

    /// Read a [`StateValue::Bytes`] field (the shared handle).
    pub fn get_bytes(&self, field: &str) -> Result<&Arc<Vec<u8>>, StateError> {
        match self.get(field)? {
            StateValue::Bytes(v) => Ok(v),
            other => Err(self.mismatch(field, "bytes", other)),
        }
    }

    /// Read a [`StateValue::Words`] field.
    pub fn get_words(&self, field: &str) -> Result<&[u32], StateError> {
        match self.get(field)? {
            StateValue::Words(v) => Ok(v),
            other => Err(self.mismatch(field, "words", other)),
        }
    }

    /// Read a [`StateValue::List`] field.
    pub fn get_list(&self, field: &str) -> Result<&[StateValue], StateError> {
        match self.get(field)? {
            StateValue::List(v) => Ok(v),
            other => Err(self.mismatch(field, "list", other)),
        }
    }

    /// Read a nested [`StateValue::Blob`] field.
    pub fn get_blob(&self, field: &str) -> Result<&StateBlob, StateError> {
        match self.get(field)? {
            StateValue::Blob(v) => Ok(v),
            other => Err(self.mismatch(field, "blob", other)),
        }
    }

    /// A [`StateError::Structure`] attributed to this blob's tag —
    /// sugar for restore paths validating element counts and names.
    pub fn structure_error(&self, detail: impl Into<String>) -> StateError {
        StateError::Structure {
            tag: self.tag.clone(),
            detail: detail.into(),
        }
    }
}

/// FIFO element encodings: how one queued element round-trips through
/// a [`StateValue`]. Implemented for the primitive channel payloads
/// here and for the AXI beat/transaction types in `rvcap-axi`.
pub trait StateItem: Sized {
    /// Encode one element.
    fn to_state(&self) -> StateValue;

    /// Decode one element; `ctx` names the owning structure for error
    /// attribution.
    fn from_state(v: &StateValue, ctx: &str) -> Result<Self, StateError>;
}

macro_rules! uint_state_item {
    ($($t:ty),*) => {
        $(impl StateItem for $t {
            fn to_state(&self) -> StateValue {
                StateValue::U64(*self as u64)
            }
            fn from_state(v: &StateValue, ctx: &str) -> Result<Self, StateError> {
                match v {
                    StateValue::U64(x) => <$t>::try_from(*x).map_err(|_| StateError::Structure {
                        tag: ctx.into(),
                        detail: format!("element {x} does not fit {}", stringify!($t)),
                    }),
                    other => Err(StateError::Structure {
                        tag: ctx.into(),
                        detail: format!("element is {}, expected u64", other.kind()),
                    }),
                }
            }
        })*
    };
}
uint_state_item!(u8, u16, u32, u64, usize);

impl StateItem for bool {
    fn to_state(&self) -> StateValue {
        StateValue::Bool(*self)
    }
    fn from_state(v: &StateValue, ctx: &str) -> Result<Self, StateError> {
        match v {
            StateValue::Bool(b) => Ok(*b),
            other => Err(StateError::Structure {
                tag: ctx.into(),
                detail: format!("element is {}, expected bool", other.kind()),
            }),
        }
    }
}

/// One component's entry in a [`SimState`]: its blob plus the kernel's
/// per-component tick accounting, which the acceptance criteria pin as
/// part of replay parity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentState {
    /// Component instance name (restore verifies it positionally).
    pub name: String,
    /// Cycle the component was registered at (or the last
    /// [`crate::Simulator::reset_stats`] boundary).
    pub registered_at: Cycle,
    /// Executed-tick count at checkpoint time.
    pub ticks: u64,
    /// The component's own state.
    pub blob: StateBlob,
}

/// Kernel scheduling-policy counters carried through a checkpoint for
/// [`crate::KernelStats`] continuity but **excluded from replay
/// parity**: a restored run re-plans its clock jumps and fusion
/// windows from a cold scheduler, so these legitimately differ from a
/// straight run while every simulated observable stays bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Whole-system clock jumps taken.
    pub jumps: u64,
    /// Cycles covered by those jumps.
    pub jumped_cycles: Cycle,
    /// Multi-component fused windows entered.
    pub fused_windows: u64,
    /// Cycles advanced inside fused windows.
    pub fused_cycles: Cycle,
    /// Per-component fused-window vetoes.
    pub fusion_vetoes: Vec<u64>,
}

/// A whole-simulator checkpoint ([`crate::Simulator::checkpoint`]).
///
/// Restorable into any simulator built by the same construction code
/// (same components, same registration order, same wiring) — which is
/// exactly how warm-boot forking works: rebuild the structure, restore
/// the state.
#[derive(Debug, Clone)]
pub struct SimState {
    /// The cycle the checkpoint was captured at.
    pub cycle: Cycle,
    /// Per-component state, in registration order.
    pub components: Vec<ComponentState>,
    /// The attached sanitizer's observation state, when one was
    /// attached.
    pub sanitizer: Option<StateBlob>,
    /// Scheduler policy counters (not part of replay parity).
    pub counters: KernelCounters,
}

impl SimState {
    /// The first replay-parity difference between two checkpoints, or
    /// `None` when they are equivalent.
    ///
    /// Parity covers the cycle, every component's name, tick
    /// accounting and state blob, and the sanitizer verdict — the
    /// exact set the replay harness pins. [`KernelCounters`] are
    /// deliberately not compared (see its docs).
    pub fn parity_diff(&self, other: &SimState) -> Option<String> {
        if self.cycle != other.cycle {
            return Some(format!("cycle: {} vs {}", self.cycle, other.cycle));
        }
        if self.components.len() != other.components.len() {
            return Some(format!(
                "component count: {} vs {}",
                self.components.len(),
                other.components.len()
            ));
        }
        for (a, b) in self.components.iter().zip(&other.components) {
            if a.name != b.name {
                return Some(format!("component name: {} vs {}", a.name, b.name));
            }
            if a.ticks != b.ticks {
                return Some(format!("{}: ticks {} vs {}", a.name, a.ticks, b.ticks));
            }
            if a.registered_at != b.registered_at {
                return Some(format!(
                    "{}: registered_at {} vs {}",
                    a.name, a.registered_at, b.registered_at
                ));
            }
            if a.blob != b.blob {
                return Some(Self::blob_diff(&a.name, &a.blob, &b.blob));
            }
        }
        match (&self.sanitizer, &other.sanitizer) {
            (Some(a), Some(b)) if a != b => Some(Self::blob_diff("sanitizer", a, b)),
            (Some(_), None) | (None, Some(_)) => Some("sanitizer presence differs".into()),
            _ => None,
        }
    }

    /// True when [`SimState::parity_diff`] finds nothing.
    pub fn parity_eq(&self, other: &SimState) -> bool {
        self.parity_diff(other).is_none()
    }

    /// Name the first differing field of two same-tag blobs.
    fn blob_diff(owner: &str, a: &StateBlob, b: &StateBlob) -> String {
        if a.tag != b.tag {
            return format!("{owner}: blob tag {} vs {}", a.tag, b.tag);
        }
        if a.fields.len() != b.fields.len() {
            return format!(
                "{owner}: field count {} vs {}",
                a.fields.len(),
                b.fields.len()
            );
        }
        for ((an, av), (bn, bv)) in a.fields.iter().zip(&b.fields) {
            if an != bn {
                return format!("{owner}: field name {an} vs {bn}");
            }
            if av != bv {
                // Recurse into nested blobs so the report names the
                // innermost differing field, not just the top one.
                if let (StateValue::Blob(ab), StateValue::Blob(bb)) = (av, bv) {
                    return Self::blob_diff(&format!("{owner}.{an}"), ab, bb);
                }
                return format!("{owner}.{an}: {av:?} vs {bv:?}");
            }
        }
        format!(
            "{owner}: blobs differ (version {} vs {})",
            a.version, b.version
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blob() -> StateBlob {
        let mut b = StateBlob::new("fifo", 1);
        b.put_u64("pushed", 7);
        b.put_opt_u64("mark", None);
        b.put_bool("busy", true);
        b.put_str("name", "p2c");
        b.put_list("queue", vec![StateValue::U64(1), StateValue::U64(2)]);
        b
    }

    #[test]
    fn typed_accessors_round_trip() {
        let b = sample_blob();
        assert_eq!(b.get_u64("pushed").unwrap(), 7);
        assert_eq!(b.get_opt_u64("mark").unwrap(), None);
        assert!(b.get_bool("busy").unwrap());
        assert_eq!(b.get_str("name").unwrap(), "p2c");
        assert_eq!(b.get_list("queue").unwrap().len(), 2);
    }

    #[test]
    fn missing_field_names_blob_and_field() {
        let b = sample_blob();
        let err = b.get_u64("absent").unwrap_err();
        assert_eq!(
            err,
            StateError::MissingField {
                tag: "fifo".into(),
                field: "absent".into()
            }
        );
        assert!(err.to_string().contains("fifo"));
        assert!(err.to_string().contains("absent"));
    }

    #[test]
    fn type_mismatch_names_expected_and_got() {
        let b = sample_blob();
        let err = b.get_bool("pushed").unwrap_err();
        assert_eq!(
            err,
            StateError::TypeMismatch {
                tag: "fifo".into(),
                field: "pushed".into(),
                expected: "bool",
                got: "u64",
            }
        );
    }

    #[test]
    fn expect_checks_tag_then_version() {
        let b = sample_blob();
        b.expect("fifo", 1).unwrap();
        assert!(matches!(
            b.expect("dma", 1).unwrap_err(),
            StateError::TagMismatch { .. }
        ));
        assert!(matches!(
            b.expect("fifo", 2).unwrap_err(),
            StateError::VersionMismatch {
                want: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn state_items_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            let enc = v.to_state();
            assert_eq!(u64::from_state(&enc, "t").unwrap(), v);
        }
        let enc = 300u64.to_state();
        assert!(u8::from_state(&enc, "t").is_err(), "300 does not fit u8");
        assert!(bool::from_state(&StateValue::U64(1), "t").is_err());
        assert!(bool::from_state(&StateValue::Bool(true), "t").unwrap());
    }

    #[test]
    fn parity_diff_ignores_kernel_counters() {
        let state = |jumps| SimState {
            cycle: 10,
            components: vec![ComponentState {
                name: "a".into(),
                registered_at: 0,
                ticks: 10,
                blob: sample_blob(),
            }],
            sanitizer: None,
            counters: KernelCounters {
                jumps,
                ..KernelCounters::default()
            },
        };
        assert!(state(0).parity_eq(&state(99)));
    }

    #[test]
    fn parity_diff_names_the_divergent_field() {
        let mk = |pushed| {
            let mut blob = StateBlob::new("fifo", 1);
            blob.put_u64("pushed", pushed);
            SimState {
                cycle: 10,
                components: vec![ComponentState {
                    name: "a".into(),
                    registered_at: 0,
                    ticks: 10,
                    blob,
                }],
                sanitizer: None,
                counters: KernelCounters::default(),
            }
        };
        let diff = mk(1).parity_diff(&mk(2)).unwrap();
        assert!(diff.contains("a.pushed"), "got: {diff}");
        assert!(mk(3).parity_eq(&mk(3)));
    }

    #[test]
    fn bytes_share_storage_across_clones() {
        let payload = Arc::new(vec![0u8; 1024]);
        let mut b = StateBlob::new("ddr", 1);
        b.put_bytes("mem", payload.clone());
        let c = b.clone();
        match (b.get("mem").unwrap(), c.get("mem").unwrap()) {
            (StateValue::Bytes(x), StateValue::Bytes(y)) => {
                assert!(Arc::ptr_eq(x, y), "clone must share the bytes");
            }
            _ => unreachable!(),
        }
    }
}
