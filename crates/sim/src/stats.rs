//! Counters and small statistics helpers used by the benchmark harness.

use crate::time::{Cycle, Freq};

/// A named monotone counter (beats transferred, stall cycles, IRQs).
#[derive(Debug, Default, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Increment by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Measurement of one timed interval of simulation, in cycles, with
/// the conversions the paper's tables use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// First cycle of the interval.
    pub start: Cycle,
    /// One past the last cycle of the interval.
    pub end: Cycle,
    /// Clock the interval was measured against.
    pub freq: Freq,
}

impl Interval {
    /// Length in cycles.
    pub fn cycles(&self) -> Cycle {
        self.end.saturating_sub(self.start)
    }

    /// Length in microseconds.
    pub fn us(&self) -> f64 {
        self.freq.cycles_to_us(self.cycles())
    }

    /// Length in milliseconds.
    pub fn ms(&self) -> f64 {
        self.freq.cycles_to_ms(self.cycles())
    }

    /// Throughput in MB/s for `bytes` moved during the interval.
    pub fn throughput_mbs(&self, bytes: u64) -> f64 {
        self.freq.throughput_mbs(bytes, self.cycles())
    }
}

/// Running min/max/mean over f64 samples (used to summarize sweeps).
#[derive(Debug, Default, Clone)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn add(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn interval_conversions() {
        let i = Interval {
            start: 100,
            end: 165_200,
            freq: Freq::FABRIC_100MHZ,
        };
        assert_eq!(i.cycles(), 165_100);
        assert!((i.us() - 1651.0).abs() < 1e-9);
        assert!((i.ms() - 1.651).abs() < 1e-9);
        // 650 892 bytes over 1651 µs ≈ 394.2 MB/s.
        assert!((i.throughput_mbs(650_892) - 394.24).abs() < 0.01);
    }

    #[test]
    fn interval_is_safe_when_reversed() {
        let i = Interval {
            start: 10,
            end: 5,
            freq: Freq::FABRIC_100MHZ,
        };
        assert_eq!(i.cycles(), 0);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        for v in [2.0, 4.0, 6.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
    }
}
