//! Counters and small statistics helpers used by the benchmark harness.

use crate::time::{Cycle, Freq};

/// A named monotone counter (beats transferred, stall cycles, IRQs).
#[derive(Debug, Default, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Increment by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Measurement of one timed interval of simulation, in cycles, with
/// the conversions the paper's tables use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// First cycle of the interval.
    pub start: Cycle,
    /// One past the last cycle of the interval.
    pub end: Cycle,
    /// Clock the interval was measured against.
    pub freq: Freq,
}

impl Interval {
    /// Length in cycles.
    pub fn cycles(&self) -> Cycle {
        self.end.saturating_sub(self.start)
    }

    /// Length in microseconds.
    pub fn us(&self) -> f64 {
        self.freq.cycles_to_us(self.cycles())
    }

    /// Length in milliseconds.
    pub fn ms(&self) -> f64 {
        self.freq.cycles_to_ms(self.cycles())
    }

    /// Throughput in MB/s for `bytes` moved during the interval.
    pub fn throughput_mbs(&self, bytes: u64) -> f64 {
        self.freq.throughput_mbs(bytes, self.cycles())
    }
}

/// MMIO access accounting for one register-mapped device.
///
/// Populated by components that decode bus traffic through a typed
/// register map (see `rvcap-axi`'s `regmap` module) and surfaced
/// through [`ComponentStats`] / [`KernelStats`]. The first two
/// counters are plain traffic; the rest are protocol violations the
/// device answered with a bus error instead of silently absorbing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MmioAudit {
    /// Accepted register reads.
    pub reads: u64,
    /// Accepted register writes.
    pub writes: u64,
    /// Accesses to an offset no register covers.
    pub unmapped: u64,
    /// Accesses inside a register's span but not at its offset.
    pub misaligned: u64,
    /// Writes to a read-only register.
    pub ro_writes: u64,
    /// Reads of a write-only register.
    pub wo_reads: u64,
    /// Accesses wider than the register.
    pub overwide: u64,
    /// Burst operations aimed at single-beat register space.
    pub bursts: u64,
    /// Bus/stream protocol violations recorded by the sanitizer
    /// (see `rvcap-sim`'s `sanitizer` module). Zero unless a sanitizer
    /// is attached; folded in by `Simulator::mmio_audit` so a single
    /// `violations() == 0` assertion covers both register policy and
    /// bus protocol.
    pub protocol: u64,
}

impl MmioAudit {
    /// Total rejected accesses (everything except plain reads/writes).
    pub fn violations(&self) -> u64 {
        self.unmapped
            + self.misaligned
            + self.ro_writes
            + self.wo_reads
            + self.overwide
            + self.bursts
            + self.protocol
    }

    /// Accumulate another audit into this one.
    pub fn merge(&mut self, other: &MmioAudit) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.unmapped += other.unmapped;
        self.misaligned += other.misaligned;
        self.ro_writes += other.ro_writes;
        self.wo_reads += other.wo_reads;
        self.overwide += other.overwide;
        self.bursts += other.bursts;
        self.protocol += other.protocol;
    }
}

/// Per-component activity accounting from the simulation kernel.
///
/// For a component registered at cycle 0, `ticks_executed +
/// cycles_skipped` equals the total cycles simulated: every cycle
/// either ran the component's `tick` or skipped it (gated by its
/// [`crate::Component::next_activity`] hint, or jumped over entirely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentStats {
    /// Component instance name.
    pub name: String,
    /// Cycles on which `tick` actually ran.
    pub ticks_executed: u64,
    /// Cycles skipped as guaranteed no-ops (gating + jumps).
    pub cycles_skipped: u64,
    /// Fused-window negotiations this component vetoed by declaring
    /// no usable [`crate::Component::max_batch`] window while due. A
    /// hot component with a high veto count is the reason fused
    /// windows stay short on a rig.
    pub fusion_vetoes: u64,
    /// Host nanoseconds spent inside this component's `tick` /
    /// `tick_batch` calls. Accumulated only while profiling is enabled
    /// ([`crate::Simulator::set_profiling`]); zero otherwise.
    pub host_ns: u64,
    /// MMIO access audit, for components that decode a register map.
    pub audit: Option<MmioAudit>,
}

impl ComponentStats {
    /// Fraction of simulated cycles this component was actually
    /// ticked, in percent. 100 % means it never declared idleness.
    pub fn utilization_pct(&self) -> f64 {
        let total = self.ticks_executed + self.cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.ticks_executed as f64 / total as f64 * 100.0
        }
    }
}

/// Snapshot of the kernel's fast-forward accounting
/// ([`crate::Simulator::kernel_stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Whether idle fast-forward was enabled at snapshot time.
    pub fast_forward: bool,
    /// Number of whole-system clock jumps taken.
    pub jumps: u64,
    /// Total cycles covered by those jumps.
    pub jumped_cycles: Cycle,
    /// Multi-component fused windows the kernel entered.
    pub fused_windows: u64,
    /// Cycles advanced inside those windows.
    pub fused_cycles: Cycle,
    /// Bus/stream protocol violations recorded by the attached
    /// sanitizer (zero when no sanitizer is attached).
    pub protocol_violations: u64,
    /// Whether per-component host-time profiling was enabled at
    /// snapshot time (the `host_ns` fields are meaningful only then).
    pub profiled: bool,
    /// Per-component counters, in registration order.
    pub components: Vec<ComponentStats>,
}

impl KernelStats {
    /// Total `tick` calls across all components.
    pub fn total_ticks(&self) -> u64 {
        self.components.iter().map(|c| c.ticks_executed).sum()
    }

    /// Total skipped component-cycles across all components.
    pub fn total_skipped(&self) -> u64 {
        self.components.iter().map(|c| c.cycles_skipped).sum()
    }

    /// Total MMIO protocol violations across every audited component.
    pub fn total_mmio_violations(&self) -> u64 {
        self.components
            .iter()
            .filter_map(|c| c.audit.as_ref())
            .map(|a| a.violations())
            .sum()
    }

    /// Merged MMIO audit across every audited component.
    pub fn mmio_audit(&self) -> MmioAudit {
        let mut total = MmioAudit::default();
        for a in self.components.iter().filter_map(|c| c.audit.as_ref()) {
            total.merge(a);
        }
        total
    }

    /// Total profiled host nanoseconds across all components (zero
    /// when profiling was disabled).
    pub fn total_host_ns(&self) -> u64 {
        self.components.iter().map(|c| c.host_ns).sum()
    }

    /// Render the tick-cost attribution table: per-component profiled
    /// host time, descending, with per-tick cost and share of the
    /// attributed total. Empty string when no host time was recorded
    /// (profiling disabled or nothing ticked).
    pub fn render_tick_costs(&self) -> String {
        let total = self.total_host_ns();
        if total == 0 {
            return String::new();
        }
        let mut rows: Vec<&ComponentStats> =
            self.components.iter().filter(|c| c.host_ns > 0).collect();
        rows.sort_by_key(|c| std::cmp::Reverse(c.host_ns));
        let name_w = rows.iter().map(|c| c.name.len()).max().unwrap_or(9).max(9);
        let mut out = String::new();
        out.push_str(&format!(
            "tick-cost attribution: {:.3} ms host time inside tick calls over {} cycles\n",
            total as f64 / 1e6,
            self.cycles,
        ));
        out.push_str(&format!(
            "  {:<name_w$}  {:>12}  {:>10}  {:>8}  {:>6}\n",
            "component", "ticks", "host ms", "ns/tick", "share",
        ));
        for c in rows {
            let per_tick = if c.ticks_executed > 0 {
                c.host_ns as f64 / c.ticks_executed as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<name_w$}  {:>12}  {:>10.3}  {:>8.1}  {:>5.1}%\n",
                c.name,
                c.ticks_executed,
                c.host_ns as f64 / 1e6,
                per_tick,
                c.host_ns as f64 / total as f64 * 100.0,
            ));
        }
        out
    }

    /// Fraction of component-cycles that were skipped, in percent —
    /// the headline savings of the fast-forward machinery.
    pub fn skipped_pct(&self) -> f64 {
        let total = self.total_ticks() + self.total_skipped();
        if total == 0 {
            0.0
        } else {
            self.total_skipped() as f64 / total as f64 * 100.0
        }
    }

    /// Render a per-component utilization table plus kernel totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "kernel: {} cycles, fast-forward {}, {} jumps covering {} cycles, \
             {} ticks executed / {} skipped ({:.1} % skipped)\n",
            self.cycles,
            if self.fast_forward { "on" } else { "off" },
            self.jumps,
            self.jumped_cycles,
            self.total_ticks(),
            self.total_skipped(),
            self.skipped_pct(),
        ));
        if self.fused_windows > 0 {
            out.push_str(&format!(
                "  fusion: {} windows covering {} cycles ({:.1} cycles/window)\n",
                self.fused_windows,
                self.fused_cycles,
                self.fused_cycles as f64 / self.fused_windows as f64,
            ));
        }
        let name_w = self
            .components
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for c in &self.components {
            out.push_str(&format!(
                "  {:<name_w$}  {:>12} ticks  {:>12} skipped  {:>6.1} % util",
                c.name,
                c.ticks_executed,
                c.cycles_skipped,
                c.utilization_pct(),
            ));
            if c.fusion_vetoes > 0 {
                out.push_str(&format!("  {:>8} vetoes", c.fusion_vetoes));
            }
            out.push('\n');
        }
        let audit = self.mmio_audit();
        if audit != MmioAudit::default() {
            out.push_str(&format!(
                "  mmio: {} reads / {} writes, {} violations \
                 (unmapped {}, misaligned {}, ro-writes {}, wo-reads {}, \
                 overwide {}, bursts {})\n",
                audit.reads,
                audit.writes,
                audit.violations(),
                audit.unmapped,
                audit.misaligned,
                audit.ro_writes,
                audit.wo_reads,
                audit.overwide,
                audit.bursts,
            ));
        }
        if self.protocol_violations > 0 {
            out.push_str(&format!(
                "  sanitizer: {} protocol violations\n",
                self.protocol_violations,
            ));
        }
        out
    }
}

/// Running min/max/mean over f64 samples (used to summarize sweeps).
#[derive(Debug, Default, Clone)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn add(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn interval_conversions() {
        let i = Interval {
            start: 100,
            end: 165_200,
            freq: Freq::FABRIC_100MHZ,
        };
        assert_eq!(i.cycles(), 165_100);
        assert!((i.us() - 1651.0).abs() < 1e-9);
        assert!((i.ms() - 1.651).abs() < 1e-9);
        // 650 892 bytes over 1651 µs ≈ 394.2 MB/s.
        assert!((i.throughput_mbs(650_892) - 394.24).abs() < 0.01);
    }

    #[test]
    fn interval_is_safe_when_reversed() {
        let i = Interval {
            start: 10,
            end: 5,
            freq: Freq::FABRIC_100MHZ,
        };
        assert_eq!(i.cycles(), 0);
    }

    #[test]
    fn mmio_audit_merges_and_counts_violations() {
        let mut a = MmioAudit {
            reads: 10,
            writes: 5,
            unmapped: 1,
            ..MmioAudit::default()
        };
        let b = MmioAudit {
            misaligned: 2,
            ro_writes: 3,
            wo_reads: 1,
            overwide: 1,
            bursts: 1,
            ..MmioAudit::default()
        };
        a.merge(&b);
        assert_eq!(a.reads, 10);
        assert_eq!(a.violations(), 9);
    }

    #[test]
    fn kernel_stats_aggregate_audits() {
        let stats = KernelStats {
            cycles: 100,
            fast_forward: true,
            jumps: 0,
            jumped_cycles: 0,
            fused_windows: 0,
            fused_cycles: 0,
            protocol_violations: 0,
            profiled: false,
            components: vec![
                ComponentStats {
                    name: "a".into(),
                    ticks_executed: 100,
                    cycles_skipped: 0,
                    fusion_vetoes: 0,
                    host_ns: 0,
                    audit: Some(MmioAudit {
                        reads: 4,
                        unmapped: 2,
                        ..MmioAudit::default()
                    }),
                },
                ComponentStats {
                    name: "b".into(),
                    ticks_executed: 100,
                    cycles_skipped: 0,
                    fusion_vetoes: 0,
                    host_ns: 0,
                    audit: None,
                },
                ComponentStats {
                    name: "c".into(),
                    ticks_executed: 100,
                    cycles_skipped: 0,
                    fusion_vetoes: 0,
                    host_ns: 0,
                    audit: Some(MmioAudit {
                        writes: 7,
                        ro_writes: 1,
                        ..MmioAudit::default()
                    }),
                },
            ],
        };
        assert_eq!(stats.total_mmio_violations(), 3);
        let merged = stats.mmio_audit();
        assert_eq!(merged.reads, 4);
        assert_eq!(merged.writes, 7);
        let rendered = stats.render();
        assert!(rendered.contains("violations"), "{rendered}");
    }

    #[test]
    fn tick_cost_table_sorts_descending_and_shares_sum() {
        let mk = |name: &str, ticks: u64, host_ns: u64| ComponentStats {
            name: name.into(),
            ticks_executed: ticks,
            cycles_skipped: 0,
            fusion_vetoes: 0,
            host_ns,
            audit: None,
        };
        let stats = KernelStats {
            cycles: 1000,
            fast_forward: true,
            jumps: 0,
            jumped_cycles: 0,
            fused_windows: 0,
            fused_cycles: 0,
            protocol_violations: 0,
            profiled: true,
            components: vec![
                mk("cold", 10, 1_000),
                mk("hot", 1000, 9_000_000),
                mk("idle", 0, 0),
            ],
        };
        assert_eq!(stats.total_host_ns(), 9_001_000);
        let table = stats.render_tick_costs();
        let hot = table.find("hot").expect("hot row present");
        let cold = table.find("cold").expect("cold row present");
        assert!(hot < cold, "hot component sorts first:\n{table}");
        assert!(!table.contains("idle"), "zero-time rows elided:\n{table}");
        // Unprofiled stats render nothing.
        let empty = KernelStats {
            profiled: false,
            components: vec![mk("a", 5, 0)],
            ..stats
        };
        assert_eq!(empty.render_tick_costs(), "");
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        for v in [2.0, 4.0, 6.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
    }
}
