//! Counters and small statistics helpers used by the benchmark harness.

use crate::time::{Cycle, Freq};

/// A named monotone counter (beats transferred, stall cycles, IRQs).
#[derive(Debug, Default, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Increment by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Measurement of one timed interval of simulation, in cycles, with
/// the conversions the paper's tables use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// First cycle of the interval.
    pub start: Cycle,
    /// One past the last cycle of the interval.
    pub end: Cycle,
    /// Clock the interval was measured against.
    pub freq: Freq,
}

impl Interval {
    /// Length in cycles.
    pub fn cycles(&self) -> Cycle {
        self.end.saturating_sub(self.start)
    }

    /// Length in microseconds.
    pub fn us(&self) -> f64 {
        self.freq.cycles_to_us(self.cycles())
    }

    /// Length in milliseconds.
    pub fn ms(&self) -> f64 {
        self.freq.cycles_to_ms(self.cycles())
    }

    /// Throughput in MB/s for `bytes` moved during the interval.
    pub fn throughput_mbs(&self, bytes: u64) -> f64 {
        self.freq.throughput_mbs(bytes, self.cycles())
    }
}

/// Per-component activity accounting from the simulation kernel.
///
/// For a component registered at cycle 0, `ticks_executed +
/// cycles_skipped` equals the total cycles simulated: every cycle
/// either ran the component's `tick` or skipped it (gated by its
/// [`crate::Component::next_activity`] hint, or jumped over entirely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentStats {
    /// Component instance name.
    pub name: String,
    /// Cycles on which `tick` actually ran.
    pub ticks_executed: u64,
    /// Cycles skipped as guaranteed no-ops (gating + jumps).
    pub cycles_skipped: u64,
}

impl ComponentStats {
    /// Fraction of simulated cycles this component was actually
    /// ticked, in percent. 100 % means it never declared idleness.
    pub fn utilization_pct(&self) -> f64 {
        let total = self.ticks_executed + self.cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.ticks_executed as f64 / total as f64 * 100.0
        }
    }
}

/// Snapshot of the kernel's fast-forward accounting
/// ([`crate::Simulator::kernel_stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Whether idle fast-forward was enabled at snapshot time.
    pub fast_forward: bool,
    /// Number of whole-system clock jumps taken.
    pub jumps: u64,
    /// Total cycles covered by those jumps.
    pub jumped_cycles: Cycle,
    /// Per-component counters, in registration order.
    pub components: Vec<ComponentStats>,
}

impl KernelStats {
    /// Total `tick` calls across all components.
    pub fn total_ticks(&self) -> u64 {
        self.components.iter().map(|c| c.ticks_executed).sum()
    }

    /// Total skipped component-cycles across all components.
    pub fn total_skipped(&self) -> u64 {
        self.components.iter().map(|c| c.cycles_skipped).sum()
    }

    /// Fraction of component-cycles that were skipped, in percent —
    /// the headline savings of the fast-forward machinery.
    pub fn skipped_pct(&self) -> f64 {
        let total = self.total_ticks() + self.total_skipped();
        if total == 0 {
            0.0
        } else {
            self.total_skipped() as f64 / total as f64 * 100.0
        }
    }

    /// Render a per-component utilization table plus kernel totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "kernel: {} cycles, fast-forward {}, {} jumps covering {} cycles, \
             {} ticks executed / {} skipped ({:.1} % skipped)\n",
            self.cycles,
            if self.fast_forward { "on" } else { "off" },
            self.jumps,
            self.jumped_cycles,
            self.total_ticks(),
            self.total_skipped(),
            self.skipped_pct(),
        ));
        let name_w = self
            .components
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for c in &self.components {
            out.push_str(&format!(
                "  {:<name_w$}  {:>12} ticks  {:>12} skipped  {:>6.1} % util\n",
                c.name,
                c.ticks_executed,
                c.cycles_skipped,
                c.utilization_pct(),
            ));
        }
        out
    }
}

/// Running min/max/mean over f64 samples (used to summarize sweeps).
#[derive(Debug, Default, Clone)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn add(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn interval_conversions() {
        let i = Interval {
            start: 100,
            end: 165_200,
            freq: Freq::FABRIC_100MHZ,
        };
        assert_eq!(i.cycles(), 165_100);
        assert!((i.us() - 1651.0).abs() < 1e-9);
        assert!((i.ms() - 1.651).abs() < 1e-9);
        // 650 892 bytes over 1651 µs ≈ 394.2 MB/s.
        assert!((i.throughput_mbs(650_892) - 394.24).abs() < 0.01);
    }

    #[test]
    fn interval_is_safe_when_reversed() {
        let i = Interval {
            start: 10,
            end: 5,
            freq: Freq::FABRIC_100MHZ,
        };
        assert_eq!(i.cycles(), 0);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        for v in [2.0, 4.0, 6.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
    }
}
