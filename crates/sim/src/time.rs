//! Cycle counts, clock frequencies, and time conversions.
//!
//! The paper reports all timings with a 5 MHz CLINT timer on a 100 MHz
//! SoC clock, and all throughputs in MB/s (decimal megabytes, matching
//! the convention of the DPR-controller literature it compares against).
//! Everything in this crate is *measured* in cycles; the helpers here
//! convert a cycle count into the units of the paper's tables exactly
//! once, at reporting time.

/// A simulated clock cycle count.
///
/// All simulated hardware in this workspace is fully synchronous to a
/// single clock (the paper's design choice: "operates with a single
/// clock source in a fully synchronized design", §III-B), so a bare
/// `u64` cycle counter is the entire notion of time.
pub type Cycle = u64;

/// A clock frequency in hertz.
///
/// Stored as integer hertz: every frequency in the paper (100 MHz
/// fabric, 5 MHz CLINT timer) is an exact integer, so no floating point
/// creeps into time bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freq(pub u64);

impl Freq {
    /// The SoC fabric clock used throughout the paper: 100 MHz, chosen
    /// because it is the ICAP maximum on 7-series devices (§III-B).
    pub const FABRIC_100MHZ: Freq = Freq(100_000_000);

    /// The CLINT real-time counter frequency used for all measurements
    /// in the paper (§IV-B): 5 MHz, i.e. one timer tick per 20 fabric
    /// cycles.
    pub const CLINT_5MHZ: Freq = Freq(5_000_000);

    /// Construct a frequency from megahertz.
    pub const fn mhz(mhz: u64) -> Freq {
        Freq(mhz * 1_000_000)
    }

    /// Frequency in hertz.
    pub const fn hz(self) -> u64 {
        self.0
    }

    /// Frequency in megahertz (integer; panics in debug if not exact).
    pub const fn as_mhz(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Convert a cycle count at this frequency into nanoseconds
    /// (exact for the frequencies used here: 100 MHz = 10 ns/cycle).
    pub fn cycles_to_ns(self, cycles: Cycle) -> f64 {
        cycles as f64 * 1e9 / self.0 as f64
    }

    /// Convert a cycle count at this frequency into microseconds.
    pub fn cycles_to_us(self, cycles: Cycle) -> f64 {
        cycles as f64 * 1e6 / self.0 as f64
    }

    /// Convert a cycle count at this frequency into milliseconds.
    pub fn cycles_to_ms(self, cycles: Cycle) -> f64 {
        cycles as f64 * 1e3 / self.0 as f64
    }

    /// Convert a duration in microseconds to (rounded-up) cycles.
    pub fn us_to_cycles(self, us: f64) -> Cycle {
        (us * self.0 as f64 / 1e6).ceil() as Cycle
    }

    /// Throughput in MB/s (decimal, as used by the paper and the
    /// DPR-controller literature) for `bytes` moved in `cycles`.
    ///
    /// Returns 0.0 for a zero-cycle interval rather than dividing by
    /// zero; no real transfer completes in zero cycles.
    pub fn throughput_mbs(self, bytes: u64, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let seconds = cycles as f64 / self.0 as f64;
        bytes as f64 / 1e6 / seconds
    }
}

/// Quantize a cycle count the way the paper's measurements are
/// quantized: to the granularity of the CLINT timer (`timer_freq`
/// ticks), then convert back to fabric cycles.
///
/// The paper measures with a 5 MHz timer on a 100 MHz fabric, so every
/// reported duration is a multiple of 20 fabric cycles. Reproducing
/// that quantization keeps our µs figures directly comparable.
pub fn quantize_to_timer(cycles: Cycle, fabric: Freq, timer: Freq) -> Cycle {
    let ratio = fabric.0 / timer.0;
    debug_assert!(ratio > 0, "timer faster than fabric clock");
    // Round to nearest timer tick, matching a read-timer-before /
    // read-timer-after measurement whose start is phase-aligned.
    let ticks = (cycles + ratio / 2) / ratio;
    ticks * ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_clock_is_10ns_per_cycle() {
        assert_eq!(Freq::FABRIC_100MHZ.cycles_to_ns(1), 10.0);
        assert_eq!(Freq::FABRIC_100MHZ.cycles_to_us(100), 1.0);
        assert_eq!(Freq::FABRIC_100MHZ.cycles_to_ms(100_000), 1.0);
    }

    #[test]
    fn mhz_constructor_matches_constants() {
        assert_eq!(Freq::mhz(100), Freq::FABRIC_100MHZ);
        assert_eq!(Freq::mhz(5), Freq::CLINT_5MHZ);
        assert_eq!(Freq::mhz(100).as_mhz(), 100);
    }

    #[test]
    fn icap_ceiling_is_400_mbs() {
        // 4 bytes per cycle at 100 MHz — the theoretical ICAP maximum
        // the paper cites (§IV-C).
        let cycles = 1_000_000;
        let bytes = 4 * cycles;
        let mbs = Freq::FABRIC_100MHZ.throughput_mbs(bytes, cycles);
        assert!((mbs - 400.0).abs() < 1e-9, "got {mbs}");
    }

    #[test]
    fn throughput_of_paper_bitstream() {
        // 650 892 bytes in 1651 µs (paper Table IV T_r) is ~394 MB/s.
        let cycles = Freq::FABRIC_100MHZ.us_to_cycles(1651.0);
        let mbs = Freq::FABRIC_100MHZ.throughput_mbs(650_892, cycles);
        assert!((mbs - 394.2).abs() < 0.5, "got {mbs}");
    }

    #[test]
    fn zero_cycles_is_zero_throughput() {
        assert_eq!(Freq::FABRIC_100MHZ.throughput_mbs(1000, 0), 0.0);
    }

    #[test]
    fn quantization_is_timer_granular() {
        let f = Freq::FABRIC_100MHZ;
        let t = Freq::CLINT_5MHZ;
        // 20 fabric cycles per timer tick.
        assert_eq!(quantize_to_timer(0, f, t), 0);
        assert_eq!(quantize_to_timer(9, f, t), 0);
        assert_eq!(quantize_to_timer(10, f, t), 20);
        assert_eq!(quantize_to_timer(20, f, t), 20);
        assert_eq!(quantize_to_timer(165_100, f, t) % 20, 0);
    }

    #[test]
    fn us_to_cycles_round_trips() {
        let f = Freq::FABRIC_100MHZ;
        assert_eq!(f.us_to_cycles(18.0), 1800);
        assert_eq!(f.us_to_cycles(1651.0), 165_100);
    }
}
