//! Bounded, levelled event tracing.
//!
//! Tracing exists for three consumers: debugging the hardware models,
//! the waveform-style dumps printed by the examples, and assertions in
//! tests ("the decoupler blocked N beats during reconfiguration").
//! It is off (`TraceLevel::Off`) in benchmarks; the hot path then costs
//! one enum comparison per call and never formats a string (messages
//! are closures, evaluated only if recorded).

use std::cell::RefCell;
use std::collections::VecDeque;

use crate::time::Cycle;

/// Trace verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing.
    Off,
    /// Major state transitions only (reconfig started, IRQ raised).
    Info,
    /// Per-beat detail. Very verbose; for tests and short runs.
    Debug,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event happened.
    pub cycle: Cycle,
    /// Component that reported it.
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

/// A bounded in-memory trace sink shared by all components of one
/// simulator (single-threaded; interior mutability via `RefCell`).
///
/// When the ring buffer is full the *oldest* events are dropped — the
/// most recent history is what debugging needs.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    capacity: usize,
    events: RefCell<VecDeque<TraceEvent>>,
    dropped: RefCell<u64>,
}

impl Tracer {
    /// Create a tracer recording at `level`, keeping at most
    /// `capacity` events.
    pub fn new(level: TraceLevel, capacity: usize) -> Self {
        Tracer {
            level,
            capacity,
            events: RefCell::new(VecDeque::with_capacity(capacity.min(4096))),
            dropped: RefCell::new(0),
        }
    }

    /// A tracer that records nothing (for benchmarks).
    pub fn off() -> Self {
        Tracer::new(TraceLevel::Off, 0)
    }

    /// The active level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    fn record(
        &self,
        min_level: TraceLevel,
        cycle: Cycle,
        source: &str,
        msg: impl FnOnce() -> String,
    ) {
        if self.level < min_level {
            return;
        }
        let mut events = self.events.borrow_mut();
        if events.len() >= self.capacity {
            events.pop_front();
            *self.dropped.borrow_mut() += 1;
        }
        if self.capacity > 0 {
            events.push_back(TraceEvent {
                cycle,
                source: source.to_string(),
                message: msg(),
            });
        }
    }

    /// Record an info-level event.
    pub fn info(&self, cycle: Cycle, source: &str, msg: impl FnOnce() -> String) {
        self.record(TraceLevel::Info, cycle, source, msg);
    }

    /// Record a debug-level event.
    pub fn debug(&self, cycle: Cycle, source: &str, msg: impl FnOnce() -> String) {
        self.record(TraceLevel::Debug, cycle, source, msg);
    }

    /// Snapshot of the recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().iter().cloned().collect()
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        *self.dropped.borrow()
    }

    /// Events whose source matches `source` exactly.
    pub fn events_from(&self, source: &str) -> Vec<TraceEvent> {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.source == source)
            .cloned()
            .collect()
    }

    /// Render the trace as one line per event (for example output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events.borrow().iter() {
            out.push_str(&format!(
                "[{:>10}] {:<16} {}\n",
                e.cycle, e.source, e.message
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing_and_never_formats() {
        let t = Tracer::off();
        let mut formatted = false;
        t.info(1, "x", || {
            formatted = true;
            "boom".into()
        });
        assert!(!formatted, "message closure must not run when off");
        assert!(t.events().is_empty());
    }

    #[test]
    fn info_level_drops_debug() {
        let t = Tracer::new(TraceLevel::Info, 8);
        t.info(1, "a", || "keep".into());
        t.debug(2, "a", || "drop".into());
        let ev = t.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].message, "keep");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let t = Tracer::new(TraceLevel::Info, 2);
        t.info(1, "a", || "one".into());
        t.info(2, "a", || "two".into());
        t.info(3, "a", || "three".into());
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].message, "two");
        assert_eq!(ev[1].message, "three");
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn filter_by_source() {
        let t = Tracer::new(TraceLevel::Debug, 8);
        t.debug(1, "dma", || "beat".into());
        t.debug(1, "icap", || "word".into());
        t.debug(2, "dma", || "beat".into());
        assert_eq!(t.events_from("dma").len(), 2);
        assert_eq!(t.events_from("icap").len(), 1);
    }

    #[test]
    fn render_contains_cycle_and_source() {
        let t = Tracer::new(TraceLevel::Info, 4);
        t.info(42, "plic", || "irq raised".into());
        let s = t.render();
        assert!(s.contains("42"));
        assert!(s.contains("plic"));
        assert!(s.contains("irq raised"));
    }
}
