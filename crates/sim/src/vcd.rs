//! VCD (value-change dump) recording — waveforms from the simulation.
//!
//! A [`VcdRecorder`] is a component that samples a set of probes every
//! cycle and renders a standard VCD file readable by GTKWave & co.
//! Probes are closures, so anything observable can be traced: decouple
//! [`crate::Signal`]s, FIFO occupancies, ICAP word counters. The
//! examples use it to show the reconfiguration pipeline filling and
//! draining.
//!
//! Register the recorder **last** so it samples end-of-cycle state.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::component::{Component, TickCtx};
use crate::fifo::Fifo;
use crate::signal::Signal;
use crate::state::{StateBlob, StateError, StateValue};

/// One traced quantity.
struct Probe {
    name: String,
    width: u8,
    id: String,
    sample: Box<dyn Fn() -> u64>,
    last: Option<u64>,
}

/// Shared access to the rendered dump.
#[derive(Clone)]
pub struct VcdHandle {
    body: Rc<RefCell<String>>,
    header: Rc<RefCell<String>>,
}

impl VcdHandle {
    /// The complete VCD file contents.
    pub fn render(&self) -> String {
        format!("{}{}", self.header.borrow(), self.body.borrow())
    }
}

/// The recorder component.
pub struct VcdRecorder {
    name: String,
    probes: Vec<Probe>,
    handle: VcdHandle,
    started: bool,
}

/// Identifier codes: printable ASCII starting at `!`.
fn id_code(index: usize) -> String {
    let mut n = index;
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

impl VcdRecorder {
    /// An empty recorder (add probes, then register with the simulator).
    pub fn new(name: impl Into<String>) -> Self {
        VcdRecorder {
            name: name.into(),
            probes: Vec::new(),
            handle: VcdHandle {
                body: Rc::new(RefCell::new(String::new())),
                header: Rc::new(RefCell::new(String::new())),
            },
            started: false,
        }
    }

    /// Handle to retrieve the dump after (or during) the run.
    pub fn handle(&self) -> VcdHandle {
        self.handle.clone()
    }

    /// Trace an arbitrary value of `width` bits.
    pub fn probe(
        &mut self,
        name: impl Into<String>,
        width: u8,
        sample: impl Fn() -> u64 + 'static,
    ) {
        assert!((1..=64).contains(&width));
        let index = self.probes.len();
        self.probes.push(Probe {
            name: name.into(),
            width,
            id: id_code(index),
            sample: Box::new(sample),
            last: None,
        });
    }

    /// Trace a boolean signal.
    pub fn probe_signal(&mut self, name: impl Into<String>, signal: Signal<bool>) {
        self.probe(name, 1, move || signal.get() as u64);
    }

    /// Trace a FIFO's occupancy.
    pub fn probe_fifo_len<T: 'static>(&mut self, name: impl Into<String>, fifo: Fifo<T>) {
        self.probe(name, 16, move || fifo.len() as u64);
    }

    fn emit_header(&mut self) {
        let mut h = self.handle.header.borrow_mut();
        h.push_str("$date rvcap-sim $end\n$version rvcap-sim vcd $end\n");
        h.push_str("$timescale 10ns $end\n$scope module soc $end\n");
        for p in &self.probes {
            let _ = writeln!(h, "$var wire {} {} {} $end", p.width, p.id, p.name);
        }
        h.push_str("$upscope $end\n$enddefinitions $end\n");
    }

    fn format_value(width: u8, value: u64, id: &str) -> String {
        if width == 1 {
            format!("{}{}\n", value & 1, id)
        } else {
            format!("b{:b} {}\n", value, id)
        }
    }
}

impl Component for VcdRecorder {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if !self.started {
            self.emit_header();
            self.started = true;
        }
        let mut changes = String::new();
        for p in &mut self.probes {
            let v = (p.sample)();
            if p.last != Some(v) {
                changes.push_str(&Self::format_value(p.width, v, &p.id));
                p.last = Some(v);
            }
        }
        if !changes.is_empty() {
            let mut body = self.handle.body.borrow_mut();
            let _ = writeln!(body, "#{}", ctx.cycle);
            body.push_str(&changes);
        }
    }

    fn save_state(&self) -> Option<StateBlob> {
        // Probe closures are structural (rebuilt by the rig); the
        // checkpoint carries the rendered text and each probe's last
        // sampled value so change detection resumes seamlessly.
        let mut b = StateBlob::new("sim.vcd", 1);
        b.put_bool("started", self.started);
        b.put_str("header", self.handle.header.borrow().clone());
        b.put_str("body", self.handle.body.borrow().clone());
        b.put_list(
            "last",
            self.probes
                .iter()
                .map(|p| match p.last {
                    Some(v) => StateValue::OptU64(Some(v)),
                    None => StateValue::OptU64(None),
                })
                .collect(),
        );
        Some(b)
    }

    fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("sim.vcd", 1)?;
        let last = state.get_list("last")?;
        if last.len() != self.probes.len() {
            return Err(state.structure_error(format!(
                "probe count mismatch: instance {}, state {}",
                self.probes.len(),
                last.len()
            )));
        }
        self.started = state.get_bool("started")?;
        *self.handle.header.borrow_mut() = state.get_str("header")?.to_string();
        *self.handle.body.borrow_mut() = state.get_str("body")?.to_string();
        for (p, v) in self.probes.iter_mut().zip(last) {
            p.last = match v {
                StateValue::OptU64(o) => *o,
                other => {
                    return Err(state
                        .structure_error(format!("probe last-value has wrong kind: {other:?}")))
                }
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Freq;
    use crate::Simulator;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let ids: Vec<String> = (0..300).map(id_code).collect();
        let set: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(set.len(), 300);
        assert!(ids
            .iter()
            .all(|s| s.bytes().all(|b| (b'!'..=b'~').contains(&b))));
        assert_eq!(ids[0], "!");
    }

    #[test]
    fn records_signal_changes_only() {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let line = Signal::new(false);
        let mut rec = VcdRecorder::new("vcd");
        rec.probe_signal("decouple", line.clone());
        let handle = rec.handle();
        sim.register(Box::new(rec));
        sim.step_n(3);
        line.set(true);
        sim.step_n(3);
        line.set(false);
        sim.step_n(2);
        let dump = handle.render();
        assert!(dump.contains("$var wire 1 ! decouple $end"));
        assert!(dump.contains("$enddefinitions"));
        // Initial value at #0, rise at #3, fall at #6 — three change
        // records, not eight.
        assert_eq!(
            dump.matches("\n0!").count() + dump.matches("\n1!").count(),
            3
        );
        assert!(dump.contains("#3\n1!"));
        assert!(dump.contains("#6\n0!"));
    }

    #[test]
    fn multibit_values_use_binary_format() {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let fifo: Fifo<u32> = Fifo::new("f", 8);
        let mut rec = VcdRecorder::new("vcd");
        rec.probe_fifo_len("depth", fifo.clone());
        let handle = rec.handle();
        sim.register(Box::new(rec));
        sim.step();
        fifo.force_push(1);
        fifo.force_push(2);
        fifo.force_push(3);
        sim.step();
        let dump = handle.render();
        assert!(dump.contains("b0 !"));
        assert!(dump.contains("b11 !"), "occupancy 3 = b11:\n{dump}");
    }

    #[test]
    fn quiet_cycles_emit_nothing() {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let line = Signal::new(true);
        let mut rec = VcdRecorder::new("vcd");
        rec.probe_signal("s", line);
        let handle = rec.handle();
        sim.register(Box::new(rec));
        sim.step_n(100);
        let dump = handle.render();
        // One timestamp (#0 with the initial sample), none after.
        assert_eq!(dump.matches('#').count(), 1);
    }
}
