//! Wake plumbing for the active-set scheduler.
//!
//! The kernel's active-set mode (see [`crate::Simulator`]) only ticks
//! components that are *due*: self-scheduled via their
//! [`crate::Component::next_activity`] hint, or externally woken
//! because new input arrived. This module carries the "externally
//! woken" half:
//!
//! * A [`WakeHub`] is owned by the simulator — one pending-wake bitset
//!   over component indices.
//! * A [`Waker`] is a cheap handle to one component's bit. The kernel
//!   hands each component its waker at registration time
//!   ([`crate::Component::wake_sources`]); the component subscribes it
//!   to every input channel that can make it runnable
//!   ([`crate::Fifo::subscribe_wake`], [`crate::Signal::subscribe_wake`]).
//! * [`WakePolicy`] is the component's promise: [`WakePolicy::Wired`]
//!   means *every* external input is subscribed, so the kernel may
//!   trust the wake queue and sleep the component between hints;
//!   [`WakePolicy::Poll`] (the default) means the kernel re-queries the
//!   hint every stepped cycle, exactly like the pre-active-set kernel.
//!
//! Wakes are level-cheap: firing a waker sets one bit in the hub (no
//! allocation, idempotent within a cycle). The kernel drains the hub at
//! each cycle start and again after every tick so a producer pushing
//! mid-cycle still activates a later-registered consumer *that* cycle,
//! preserving the producer-before-consumer ordering contract.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A component's promise about its external inputs, returned from
/// [`crate::Component::wake_sources`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakePolicy {
    /// No promise: the kernel re-queries the component's
    /// [`crate::Component::next_activity`] hint every stepped cycle.
    /// Always correct; this is the default and matches the pre-wake
    /// kernel exactly.
    Poll,
    /// Every channel or signal whose state can change the component's
    /// hint has the waker subscribed. The kernel may sleep the
    /// component until its declared hint cycle or a wake, whichever
    /// comes first.
    Wired,
}

#[derive(Debug, Default)]
struct HubShared {
    /// Pending-wake bitset over component indices. Guarded by a
    /// `RefCell` only for growth and the drain loops; the emptiness
    /// flag lives outside it so the kernel's after-every-tick drain
    /// call is a plain load when nothing is pending.
    words: RefCell<Vec<u64>>,
    /// Fast emptiness check (cleared only by full drains).
    any: Cell<bool>,
}

/// The simulator-owned pending-wake set. Cloning shares the set.
#[derive(Debug, Clone, Default)]
pub struct WakeHub {
    inner: Rc<HubShared>,
}

impl WakeHub {
    /// An empty hub.
    pub fn new() -> Self {
        WakeHub::default()
    }

    /// Make room for component index `index`.
    pub(crate) fn grow_to(&self, index: usize) {
        let mut words = self.inner.words.borrow_mut();
        let need = index / 64 + 1;
        if words.len() < need {
            words.resize(need, 0);
        }
    }

    /// A waker for component `index`.
    pub fn waker(&self, index: usize) -> Waker {
        self.grow_to(index);
        Waker {
            hub: self.inner.clone(),
            index,
        }
    }

    /// Mark component `index` pending.
    pub(crate) fn wake(&self, index: usize) {
        self.grow_to(index);
        self.inner.words.borrow_mut()[index / 64] |= 1 << (index % 64);
        self.inner.any.set(true);
    }

    /// True when no wakes are pending.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        !self.inner.any.get()
    }

    /// Move every pending wake into `due` (bit-or) and clear the hub.
    #[inline]
    pub(crate) fn drain_all_into(&self, due: &mut BitSet) {
        if !self.inner.any.get() {
            return;
        }
        let mut words = self.inner.words.borrow_mut();
        due.grow_to_words(words.len());
        for (d, w) in due.words.iter_mut().zip(words.iter_mut()) {
            *d |= *w;
            *w = 0;
        }
        self.inner.any.set(false);
    }

    /// Move pending wakes for indices **strictly greater than**
    /// `threshold` into `due`, leaving lower indices pending (they get
    /// their re-query at the next cycle start — a wake aimed at an
    /// already-passed tick slot is a next-cycle wake, exactly like the
    /// one-cycle pipeline latency of the naive schedule).
    #[inline]
    pub(crate) fn drain_above_into(&self, threshold: usize, due: &mut BitSet) {
        if !self.inner.any.get() {
            return;
        }
        self.drain_above_slow(threshold, due);
    }

    fn drain_above_slow(&self, threshold: usize, due: &mut BitSet) {
        let mut words = self.inner.words.borrow_mut();
        due.grow_to_words(words.len());
        let word = threshold / 64;
        let bit = threshold % 64;
        let mut below = false;
        for (i, (d, w)) in due.words.iter_mut().zip(words.iter_mut()).enumerate() {
            if i < word {
                below |= *w != 0;
                continue;
            }
            let take = if i == word {
                // Keep bits 0..=threshold pending.
                *w & !(u64::MAX >> (63 - bit) as u32)
            } else {
                *w
            };
            *d |= take;
            *w &= !take;
            below |= *w != 0;
        }
        self.inner.any.set(below);
    }
}

/// Handle that marks one component pending in its simulator's
/// [`WakeHub`]. Stored inside [`crate::Fifo`]s and
/// [`crate::Signal`]s via their `subscribe_wake` methods.
#[derive(Debug, Clone)]
pub struct Waker {
    hub: Rc<HubShared>,
    index: usize,
}

impl Waker {
    /// Mark the owning component pending. Idempotent and allocation-
    /// free; safe to call from any context (ticked code or host).
    #[inline]
    pub fn wake(&self) {
        let mut words = self.hub.words.borrow_mut();
        debug_assert!(self.index / 64 < words.len());
        words[self.index / 64] |= 1 << (self.index % 64);
        drop(words);
        self.hub.any.set(true);
    }

    /// The component index this waker targets.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// A reusable bitset over component indices (the kernel's per-cycle
/// due set). Not a general-purpose container — just enough for the
/// scheduler's zero-allocation inner loop.
#[derive(Debug, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn grow_to_words(&mut self, words: usize) {
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    pub(crate) fn grow_to(&mut self, index: usize) {
        self.grow_to_words(index / 64 + 1);
    }

    pub(crate) fn clear_all(&mut self) {
        self.words.fill(0);
    }

    pub(crate) fn set(&mut self, index: usize) {
        self.grow_to(index);
        self.words[index / 64] |= 1 << (index % 64);
    }

    pub(crate) fn clear(&mut self, index: usize) {
        if index / 64 < self.words.len() {
            self.words[index / 64] &= !(1 << (index % 64));
        }
    }

    /// True when `index` is set.
    pub(crate) fn get(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1 << (index % 64)) != 0)
    }

    /// Smallest set index `>= from`, if any.
    pub(crate) fn next_at_or_after(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        if word >= self.words.len() {
            return None;
        }
        let mut bits = self.words[word] & (u64::MAX << (from % 64) as u32);
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= self.words.len() {
                return None;
            }
            bits = self.words[word];
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of set bits.
    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_sets_pending_and_drains() {
        let hub = WakeHub::new();
        let w = hub.waker(70);
        assert!(hub.is_empty());
        w.wake();
        w.wake(); // idempotent
        assert!(!hub.is_empty());
        let mut due = BitSet::default();
        hub.drain_all_into(&mut due);
        assert!(hub.is_empty());
        assert_eq!(due.next_at_or_after(0), Some(70));
        assert_eq!(due.count(), 1);
    }

    #[test]
    fn drain_above_splits_on_the_threshold() {
        let hub = WakeHub::new();
        for i in [3usize, 64, 65, 130] {
            hub.waker(i).wake();
        }
        let mut due = BitSet::default();
        // Threshold 64: 3 and 64 stay pending, 65 and 130 become due.
        hub.drain_above_into(64, &mut due);
        assert_eq!(due.next_at_or_after(0), Some(65));
        assert_eq!(due.next_at_or_after(66), Some(130));
        assert_eq!(due.count(), 2);
        assert!(!hub.is_empty());
        let mut rest = BitSet::default();
        hub.drain_all_into(&mut rest);
        assert_eq!(rest.next_at_or_after(0), Some(3));
        assert_eq!(rest.next_at_or_after(4), Some(64));
        assert_eq!(rest.count(), 2);
        assert!(hub.is_empty());
    }

    #[test]
    fn drain_above_clears_any_flag_only_when_nothing_remains() {
        let hub = WakeHub::new();
        hub.waker(10).wake();
        let mut due = BitSet::default();
        hub.drain_above_into(5, &mut due);
        assert!(hub.is_empty(), "10 > 5 was fully drained");
        assert_eq!(due.next_at_or_after(0), Some(10));
    }

    #[test]
    fn bitset_iterates_ascending() {
        let mut b = BitSet::default();
        for i in [0usize, 1, 63, 64, 127, 200] {
            b.set(i);
        }
        let mut seen = Vec::new();
        let mut from = 0;
        while let Some(i) = b.next_at_or_after(from) {
            seen.push(i);
            b.clear(i);
            from = i + 1;
        }
        assert_eq!(seen, vec![0, 1, 63, 64, 127, 200]);
        assert!(b.is_empty());
    }
}
