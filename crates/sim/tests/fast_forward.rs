//! Property tests for idle fast-forward: whatever activity pattern a
//! set of components declares, the kernel must execute a tick on every
//! declared-activity cycle — skipping and clock jumps may only ever
//! remove ticks the components themselves guaranteed to be no-ops —
//! and the result must be bit-identical to the naive schedule.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use proptest::prelude::*;
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::{Cycle, Freq, Simulator};

/// A component driven by a precomputed schedule of active cycles. The
/// tick records every scheduled cycle it actually executes on;
/// `next_activity` points at the next scheduled cycle (or idles at
/// `Cycle::MAX` once the schedule is exhausted). With `hinted` off it
/// declares nothing, which must disable jumps but change nothing else.
struct Scripted {
    name: String,
    schedule: BTreeSet<Cycle>,
    executed: Rc<RefCell<Vec<Cycle>>>,
    hinted: bool,
}

impl Scripted {
    fn new(i: usize, cycles: &[Cycle], hinted: bool) -> (Self, Rc<RefCell<Vec<Cycle>>>) {
        let executed = Rc::new(RefCell::new(Vec::new()));
        (
            Scripted {
                name: format!("scripted{i}"),
                schedule: cycles.iter().copied().collect(),
                executed: executed.clone(),
                hinted,
            },
            executed,
        )
    }
}

impl Component for Scripted {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if self.schedule.contains(&ctx.cycle) {
            self.executed.borrow_mut().push(ctx.cycle);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.hinted {
            return None;
        }
        Some(
            self.schedule
                .range(now..)
                .next()
                .copied()
                .unwrap_or(Cycle::MAX),
        )
    }
}

/// Run `horizon` cycles over the given schedules; returns what each
/// component observed plus the final cycle counter.
fn run(
    schedules: &[Vec<Cycle>],
    hintless_mask: u64,
    fast_forward: bool,
    horizon: Cycle,
) -> (Vec<Vec<Cycle>>, Cycle) {
    let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
    sim.set_fast_forward(fast_forward);
    let mut logs = Vec::new();
    for (i, cycles) in schedules.iter().enumerate() {
        let hinted = hintless_mask & (1 << i) == 0;
        let (c, log) = Scripted::new(i, cycles, hinted);
        sim.register(Box::new(c));
        logs.push(log);
    }
    sim.step_n(horizon);
    (logs.iter().map(|l| l.borrow().clone()).collect(), sim.now())
}

proptest! {
    #[test]
    fn no_declared_activity_cycle_is_skipped(
        schedules in proptest::collection::vec(
            proptest::collection::vec(0u64..400, 0..24),
            1..6,
        ),
        hintless_mask in 0u64..64,
    ) {
        const HORIZON: Cycle = 400;
        let (ff_logs, ff_end) = run(&schedules, hintless_mask, true, HORIZON);
        let (naive_logs, naive_end) = run(&schedules, hintless_mask, false, HORIZON);

        prop_assert_eq!(ff_end, naive_end, "cycle counter diverged");
        for (i, (got, sched)) in ff_logs.iter().zip(&schedules).enumerate() {
            // Every scheduled cycle inside the horizon executed,
            // exactly once, in order.
            let mut want: Vec<Cycle> = sched
                .iter()
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            want.retain(|&c| c < HORIZON);
            prop_assert_eq!(got, &want, "component {} missed a cycle", i);
        }
        prop_assert_eq!(&ff_logs, &naive_logs);
    }
}
