//! Property test for replay parity: for **random pipeline rigs** and a
//! **random checkpoint cycle**, `checkpoint → restore into a fresh rig
//! → continue` is bit-identical to the uninterrupted run under every
//! scheduler mode (naive, scan, active-set, active-set + batching,
//! active-set + batching + fusion).
//!
//! The components mirror the randomized graphs of
//! `scheduler_equivalence.rs` — paced sources, latency stages (wired
//! or polled), paced sinks — but additionally implement the full
//! save/restore contract, following the ownership convention: each
//! FIFO is saved by its unique consumer.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::sanitizer::{ChannelKind, Sanitizer};
use rvcap_sim::state::{SimState, StateBlob, StateError, StateValue};
use rvcap_sim::wake::{WakePolicy, Waker};
use rvcap_sim::{Cycle, Fifo, Freq, Scheduler, Simulator};

struct Source {
    name: String,
    out: Fifo<u64>,
    gap: Cycle,
    remaining: u64,
    next_val: u64,
    next_push: Cycle,
}

impl Component for Source {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if self.remaining == 0 || ctx.cycle < self.next_push {
            return;
        }
        if self.out.try_push(ctx.cycle, self.next_val).is_ok() {
            self.next_val += 1;
            self.remaining -= 1;
            self.next_push = ctx.cycle + 1 + self.gap;
        }
    }

    fn busy(&self) -> bool {
        self.remaining > 0
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.remaining == 0 {
            Some(Cycle::MAX)
        } else {
            Some(self.next_push.max(now))
        }
    }

    fn wake_sources(&self, _waker: &Waker) -> WakePolicy {
        WakePolicy::Wired
    }

    fn max_batch(&self, _now: Cycle) -> Option<Cycle> {
        (self.gap == 0 && self.remaining > 0).then_some(self.remaining)
    }

    fn save_state(&self) -> Option<StateBlob> {
        // `out` is saved by its consumer.
        let mut b = StateBlob::new("prop.source", 1);
        b.put_u64("gap", self.gap);
        b.put_u64("remaining", self.remaining);
        b.put_u64("next_val", self.next_val);
        b.put_u64("next_push", self.next_push);
        Some(b)
    }

    fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("prop.source", 1)?;
        if state.get_u64("gap")? != self.gap {
            return Err(state.structure_error("gap config mismatch"));
        }
        self.remaining = state.get_u64("remaining")?;
        self.next_val = state.get_u64("next_val")?;
        self.next_push = state.get_u64("next_push")?;
        Ok(())
    }
}

struct Stage {
    name: String,
    input: Fifo<u64>,
    output: Fifo<u64>,
    latency: Cycle,
    holding: Option<(Cycle, u64)>,
    polled: bool,
}

impl Component for Stage {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if let Some((ready, v)) = self.holding {
            if ctx.cycle >= ready && self.output.try_push(ctx.cycle, v).is_ok() {
                self.holding = None;
            }
        }
        if self.holding.is_none() {
            if let Some(v) = self.input.try_pop(ctx.cycle) {
                self.holding = Some((ctx.cycle + self.latency, v.wrapping_mul(3) ^ 1));
            }
        }
    }

    fn busy(&self) -> bool {
        self.holding.is_some() || !self.input.is_empty()
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        match self.holding {
            Some((ready, _)) => Some(ready.max(now)),
            None if self.input.is_empty() => Some(Cycle::MAX),
            None => Some(now),
        }
    }

    fn wake_sources(&self, waker: &Waker) -> WakePolicy {
        if self.polled {
            WakePolicy::Poll
        } else {
            self.input.subscribe_wake(waker.clone());
            WakePolicy::Wired
        }
    }

    fn max_batch(&self, _now: Cycle) -> Option<Cycle> {
        if self.latency != 0 {
            return None;
        }
        let w = usize::from(self.holding.is_some()) + self.input.len();
        (w > 0).then_some(w as Cycle)
    }

    fn save_state(&self) -> Option<StateBlob> {
        // Consumer of `input`; `output` is saved downstream.
        let mut b = StateBlob::new("prop.stage", 1);
        b.put("input", self.input.save_state());
        b.put_u64("latency", self.latency);
        b.put_bool("polled", self.polled);
        let (ready, val) = match self.holding {
            Some((r, v)) => (Some(r), v),
            None => (None, 0),
        };
        b.put_opt_u64("holding_ready", ready);
        b.put_u64("holding_val", val);
        Some(b)
    }

    fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("prop.stage", 1)?;
        if state.get_u64("latency")? != self.latency || state.get_bool("polled")? != self.polled {
            return Err(state.structure_error("stage config mismatch"));
        }
        self.input.restore_state(state.get("input")?)?;
        let val = state.get_u64("holding_val")?;
        self.holding = state.get_opt_u64("holding_ready")?.map(|r| (r, val));
        Ok(())
    }
}

struct Sink {
    name: String,
    input: Fifo<u64>,
    period: Cycle,
    next_pop: Cycle,
    log: Rc<RefCell<Vec<(Cycle, u64)>>>,
}

impl Component for Sink {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if ctx.cycle >= self.next_pop {
            if let Some(v) = self.input.try_pop(ctx.cycle) {
                self.log.borrow_mut().push((ctx.cycle, v));
                self.next_pop = ctx.cycle + self.period;
            }
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if now < self.next_pop {
            Some(self.next_pop)
        } else if self.input.is_empty() {
            Some(Cycle::MAX)
        } else {
            Some(now)
        }
    }

    fn wake_sources(&self, waker: &Waker) -> WakePolicy {
        self.input.subscribe_wake(waker.clone());
        WakePolicy::Wired
    }

    fn max_batch(&self, now: Cycle) -> Option<Cycle> {
        if self.period != 1 || now < self.next_pop {
            return None;
        }
        let o = self.input.len() as Cycle;
        (o > 0).then_some(o)
    }

    fn save_state(&self) -> Option<StateBlob> {
        let mut b = StateBlob::new("prop.sink", 1);
        b.put("input", self.input.save_state());
        b.put_u64("period", self.period);
        b.put_u64("next_pop", self.next_pop);
        let log = self.log.borrow();
        b.put_list(
            "log_cycles",
            log.iter().map(|&(c, _)| StateValue::U64(c)).collect(),
        );
        b.put_list(
            "log_values",
            log.iter().map(|&(_, v)| StateValue::U64(v)).collect(),
        );
        Some(b)
    }

    fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("prop.sink", 1)?;
        if state.get_u64("period")? != self.period {
            return Err(state.structure_error("period config mismatch"));
        }
        self.input.restore_state(state.get("input")?)?;
        self.next_pop = state.get_u64("next_pop")?;
        let cycles = state.get_list("log_cycles")?;
        let values = state.get_list("log_values")?;
        if cycles.len() != values.len() {
            return Err(state.structure_error("log list length mismatch"));
        }
        let mut log = Vec::with_capacity(cycles.len());
        for (c, v) in cycles.iter().zip(values) {
            match (c, v) {
                (StateValue::U64(c), StateValue::U64(v)) => log.push((*c, *v)),
                _ => return Err(state.structure_error("log entry has wrong kind")),
            }
        }
        *self.log.borrow_mut() = log;
        Ok(())
    }
}

/// One randomized pipeline (see `scheduler_equivalence.rs`).
#[derive(Debug, Clone)]
struct ChainParams {
    gap: Cycle,
    count: u64,
    period: Cycle,
    cap: usize,
    preload: usize,
    stages: Vec<(Cycle, bool)>,
}

fn chain_strategy() -> impl Strategy<Value = ChainParams> {
    (
        0u64..6,
        1u64..24,
        1u64..6,
        1usize..16,
        0usize..16,
        proptest::collection::vec((0u64..5, any::<bool>()), 0..4),
    )
        .prop_map(|(gap, count, period, cap, preload, stages)| ChainParams {
            gap,
            count,
            period,
            cap,
            preload: preload.min(cap),
            stages,
        })
}

/// The five scheduler modes: (scheduler, batching, fusion).
const MODES: [(Scheduler, bool, bool); 5] = [
    (Scheduler::Naive, false, false),
    (Scheduler::Scan, false, false),
    (Scheduler::ActiveSet, false, false),
    (Scheduler::ActiveSet, true, false),
    (Scheduler::ActiveSet, true, true),
];

/// Build a fresh rig for `chains` under `mode` — identical structure
/// every call, which is the precondition for restore.
fn build(chains: &[ChainParams], mode: (Scheduler, bool, bool)) -> Simulator {
    let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
    sim.set_scheduler(mode.0);
    sim.set_batching(mode.1);
    sim.set_fusion(mode.2);
    let sanitizer = Sanitizer::new();
    sim.attach_sanitizer(sanitizer.clone());
    for (ci, p) in chains.iter().enumerate() {
        let fifos: Vec<Fifo<u64>> = (0..=p.stages.len())
            .map(|fi| Fifo::new(format!("c{ci}.f{fi}"), p.cap))
            .collect();
        for i in 0..p.preload {
            fifos[0].force_push(500_000 + ci as u64 * 1000 + i as u64);
        }
        for f in &fifos {
            sanitizer.watch(f, ChannelKind::Opaque);
        }
        sim.register(Box::new(Source {
            name: format!("c{ci}.src"),
            out: fifos[0].clone(),
            gap: p.gap,
            remaining: p.count,
            next_val: 1 + ci as u64 * 1000,
            next_push: 0,
        }));
        for (si, &(latency, polled)) in p.stages.iter().enumerate() {
            sim.register(Box::new(Stage {
                name: format!("c{ci}.stage{si}"),
                input: fifos[si].clone(),
                output: fifos[si + 1].clone(),
                latency,
                holding: None,
                polled,
            }));
        }
        sim.register(Box::new(Sink {
            name: format!("c{ci}.sink"),
            input: fifos.last().expect("last hop").clone(),
            period: p.period,
            next_pop: 0,
            log: Rc::new(RefCell::new(Vec::new())),
        }));
    }
    sim
}

/// Run horizon: long enough that most random rigs fully drain, short
/// enough that the naive schedule stays cheap across proptest cases.
const TOTAL: Cycle = 2_000;

fn straight(chains: &[ChainParams], mode: (Scheduler, bool, bool)) -> SimState {
    let mut sim = build(chains, mode);
    sim.step_n(TOTAL);
    sim.checkpoint().expect("straight checkpoint")
}

fn forked(chains: &[ChainParams], mode: (Scheduler, bool, bool), cp: Cycle) -> SimState {
    let mut a = build(chains, mode);
    a.step_n(cp);
    let base = a.checkpoint().expect("mid-run checkpoint");
    let mut b = build(chains, mode);
    b.restore(&base).expect("restore into fresh rig");
    b.step_n(TOTAL - cp);
    b.checkpoint().expect("forked checkpoint")
}

proptest! {
    /// For a random rig and a random checkpoint cycle, the forked run
    /// ends parity-equal to the straight run under all five modes —
    /// and the straight runs agree across modes on everything but
    /// tick accounting (scheduler equivalence, re-checked here so a
    /// parity failure can be attributed).
    #[test]
    fn checkpoint_restore_run_equals_straight_run(
        chains in proptest::collection::vec(chain_strategy(), 1..3),
        cp in 0u64..TOTAL,
    ) {
        for mode in MODES {
            let s = straight(&chains, mode);
            let f = forked(&chains, mode, cp);
            prop_assert_eq!(
                s.parity_diff(&f),
                None,
                "replay parity under {:?} with checkpoint at {}",
                mode,
                cp
            );
        }
    }
}
