//! Observational equivalence of the kernel schedulers.
//!
//! Randomized producer → stage… → consumer FIFO graphs run under all
//! five schedules (naive, full-scan fast-forward, active-set,
//! active-set with batching, and active-set with stream fusion). The
//! schedulers may only trade host time: the final cycle, every sink's
//! `(cycle, value)` log, and the sanitizer's violation count must be
//! identical across all five, and the per-component
//! `ticks_executed`/`cycles_skipped` split must be identical between
//! the hint-driven schedules (naive executes the no-op ticks the
//! hints rule out, so only its totals are checked).
//!
//! The graphs exercise the scheduler edges that caused bugs during
//! bring-up: same-cycle producer-before-consumer forwarding, full-FIFO
//! producer spin (pops fire no wakes), post-tick deadline reschedule,
//! and `WakePolicy::Poll` components mixed into a wired graph. The
//! components publish honest `max_batch` windows (gapless sources and
//! zero-latency stages only — paced ones cannot promise a second due
//! cycle), and a random FIFO preload gives the fused schedule deep
//! enough backlogs to negotiate multi-member windows; paced/`Poll`
//! configurations exercise its veto and backoff paths instead.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::sanitizer::{ChannelKind, Sanitizer};
use rvcap_sim::wake::{WakePolicy, Waker};
use rvcap_sim::{Cycle, Fifo, Freq, Scheduler, Simulator};

/// Pushes `count` increasing values into `out`, waiting `gap` cycles
/// between successful pushes. A full FIFO holds the value with a `now`
/// hint and retries every cycle — the documented producer idiom (pops
/// fire no wakes).
struct Source {
    name: String,
    out: Fifo<u64>,
    gap: Cycle,
    remaining: u64,
    next_val: u64,
    next_push: Cycle,
}

impl Component for Source {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if self.remaining == 0 || ctx.cycle < self.next_push {
            return;
        }
        if self.out.try_push(ctx.cycle, self.next_val).is_ok() {
            self.next_val += 1;
            self.remaining -= 1;
            self.next_push = ctx.cycle + 1 + self.gap;
        }
    }

    fn busy(&self) -> bool {
        self.remaining > 0
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.remaining == 0 {
            Some(Cycle::MAX)
        } else {
            Some(self.next_push.max(now))
        }
    }

    fn wake_sources(&self, _waker: &Waker) -> WakePolicy {
        // Pure time-based deadlines; no external input feeds the hint.
        WakePolicy::Wired
    }

    fn max_batch(&self, _now: Cycle) -> Option<Cycle> {
        // Gapless: pushes (or retries against a full FIFO, which is
        // still due) every cycle until dry. A paced source parks
        // itself after each push and cannot promise a second cycle.
        (self.gap == 0 && self.remaining > 0).then_some(self.remaining)
    }
}

/// Pops one value, holds it `latency` cycles, pushes a transformed
/// copy downstream. With `polled` set it declares `WakePolicy::Poll`
/// instead of subscribing its input — semantically identical, but it
/// takes the kernel's per-cycle re-query path.
struct Stage {
    name: String,
    input: Fifo<u64>,
    output: Fifo<u64>,
    latency: Cycle,
    holding: Option<(Cycle, u64)>,
    polled: bool,
}

impl Component for Stage {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if let Some((ready, v)) = self.holding {
            if ctx.cycle >= ready && self.output.try_push(ctx.cycle, v).is_ok() {
                self.holding = None;
            }
        }
        if self.holding.is_none() {
            if let Some(v) = self.input.try_pop(ctx.cycle) {
                self.holding = Some((ctx.cycle + self.latency, v.wrapping_mul(3) ^ 1));
            }
        }
    }

    fn busy(&self) -> bool {
        self.holding.is_some() || !self.input.is_empty()
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        match self.holding {
            // Holding: nothing happens before the value is ready (the
            // input stays queued); once ready, spin until the push
            // lands.
            Some((ready, _)) => Some(ready.max(now)),
            None if self.input.is_empty() => Some(Cycle::MAX),
            None => Some(now),
        }
    }

    fn wake_sources(&self, waker: &Waker) -> WakePolicy {
        if self.polled {
            WakePolicy::Poll
        } else {
            self.input.subscribe_wake(waker.clone());
            WakePolicy::Wired
        }
    }

    fn max_batch(&self, _now: Cycle) -> Option<Cycle> {
        // A nonzero hold time breaks due-ness after each pop, so only
        // the zero-latency shape can promise a window: each due cycle
        // either pushes the held value (a full output only turns that
        // into a retry, still due) or pops a queued one, and at most
        // one buffered element leaves per cycle.
        if self.latency != 0 {
            return None;
        }
        let w = usize::from(self.holding.is_some()) + self.input.len();
        (w > 0).then_some(w as Cycle)
    }
}

/// Pops at most one value every `period` cycles, logging
/// `(cycle, value)` — the observation the equivalence check compares.
struct Sink {
    name: String,
    input: Fifo<u64>,
    period: Cycle,
    next_pop: Cycle,
    log: Rc<RefCell<Vec<(Cycle, u64)>>>,
}

impl Component for Sink {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if ctx.cycle >= self.next_pop {
            if let Some(v) = self.input.try_pop(ctx.cycle) {
                self.log.borrow_mut().push((ctx.cycle, v));
                self.next_pop = ctx.cycle + self.period;
            }
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if now < self.next_pop {
            Some(self.next_pop)
        } else if self.input.is_empty() {
            Some(Cycle::MAX)
        } else {
            Some(now)
        }
    }

    fn wake_sources(&self, waker: &Waker) -> WakePolicy {
        self.input.subscribe_wake(waker.clone());
        WakePolicy::Wired
    }

    fn max_batch(&self, now: Cycle) -> Option<Cycle> {
        // A period-1 sink pops one queued value per cycle, so the
        // occupancy bounds the guaranteed due stretch no matter what
        // arrives. Longer periods park the sink after every pop.
        if self.period != 1 || now < self.next_pop {
            return None;
        }
        let o = self.input.len() as Cycle;
        (o > 0).then_some(o)
    }
}

/// One randomized pipeline: source pacing, per-stage latency and wake
/// policy, sink pacing, the (uniform) FIFO capacity, and how many
/// values sit in the first hop before cycle 0 (clamped to the
/// capacity) — the backlog that lets fused windows form.
#[derive(Debug, Clone)]
struct ChainParams {
    gap: Cycle,
    count: u64,
    period: Cycle,
    cap: usize,
    preload: usize,
    stages: Vec<(Cycle, bool)>,
}

fn chain_strategy() -> impl Strategy<Value = ChainParams> {
    (
        0u64..6,
        1u64..24,
        1u64..6,
        1usize..16,
        0usize..16,
        proptest::collection::vec((0u64..5, any::<bool>()), 0..4),
    )
        .prop_map(|(gap, count, period, cap, preload, stages)| ChainParams {
            gap,
            count,
            period,
            cap,
            preload: preload.min(cap),
            stages,
        })
}

/// Everything one run observes; the cross-scheduler comparison key.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    final_cycle: Cycle,
    logs: Vec<Vec<(Cycle, u64)>>,
    violations: u64,
}

/// `(ticks_executed, cycles_skipped)` per component, registration
/// order — identical between the hint-driven schedules only.
type TickCounts = Vec<(u64, u64)>;

fn run(
    chains: &[ChainParams],
    scheduler: Scheduler,
    batching: bool,
    fusion: bool,
) -> (Observed, TickCounts) {
    const HORIZON: Cycle = 20_000;
    let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
    sim.set_scheduler(scheduler);
    sim.set_batching(batching);
    sim.set_fusion(fusion);
    let sanitizer = Sanitizer::new();
    sim.attach_sanitizer(sanitizer.clone());

    let mut logs = Vec::new();
    for (ci, p) in chains.iter().enumerate() {
        // n_stages + 1 hops, registered producer-before-consumer.
        let mut fifos: Vec<Fifo<u64>> = (0..=p.stages.len())
            .map(|fi| Fifo::new(format!("c{ci}.f{fi}"), p.cap))
            .collect();
        // Pre-cycle-0 backlog in the first hop (the sanitizer watch
        // below picks up the occupancy as the initial state).
        for i in 0..p.preload {
            fifos[0].force_push(500_000 + ci as u64 * 1000 + i as u64);
        }
        for f in &fifos {
            sanitizer.watch(f, ChannelKind::Opaque);
        }
        sim.register(Box::new(Source {
            name: format!("c{ci}.src"),
            out: fifos[0].clone(),
            gap: p.gap,
            remaining: p.count,
            next_val: 1 + ci as u64 * 1000,
            next_push: 0,
        }));
        for (si, &(latency, polled)) in p.stages.iter().enumerate() {
            sim.register(Box::new(Stage {
                name: format!("c{ci}.stage{si}"),
                input: fifos[si].clone(),
                output: fifos[si + 1].clone(),
                latency,
                holding: None,
                polled,
            }));
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.register(Box::new(Sink {
            name: format!("c{ci}.sink"),
            input: fifos.pop().expect("last hop"),
            period: p.period,
            next_pop: 0,
            log: log.clone(),
        }));
        logs.push(log);
    }

    let expected: usize = chains.iter().map(|p| p.count as usize + p.preload).sum();
    let done = || logs.iter().map(|l| l.borrow().len()).sum::<usize>() == expected;
    sim.run_until(HORIZON, done)
        .expect("graph is acyclic and sinks always drain");

    let stats = sim.kernel_stats();
    (
        Observed {
            final_cycle: sim.now(),
            logs: logs.iter().map(|l| l.borrow().clone()).collect(),
            violations: sanitizer.violation_count(),
        },
        stats
            .components
            .iter()
            .map(|c| (c.ticks_executed, c.cycles_skipped))
            .collect(),
    )
}

proptest! {
    #[test]
    fn schedulers_are_observationally_identical(
        chains in proptest::collection::vec(chain_strategy(), 1..3),
    ) {
        let (naive, naive_ticks) = run(&chains, Scheduler::Naive, false, false);
        let (scan, scan_ticks) = run(&chains, Scheduler::Scan, false, false);
        let (active, active_ticks) = run(&chains, Scheduler::ActiveSet, false, false);
        let (batched, batched_ticks) = run(&chains, Scheduler::ActiveSet, true, false);
        let (fused, fused_ticks) = run(&chains, Scheduler::ActiveSet, true, true);

        // Observations: identical across all five schedules.
        prop_assert_eq!(&naive, &scan);
        prop_assert_eq!(&naive, &active);
        prop_assert_eq!(&naive, &batched);
        prop_assert_eq!(&naive, &fused);
        prop_assert_eq!(naive.violations, 0, "clean graphs must stay clean");

        // Executed-tick accounting: the hint-driven schedules skip
        // exactly the hint-ruled-out ticks, so their splits agree;
        // naive executes everything, so only its totals line up.
        prop_assert_eq!(&scan_ticks, &active_ticks);
        prop_assert_eq!(&scan_ticks, &batched_ticks);
        prop_assert_eq!(&scan_ticks, &fused_ticks);
        for (i, (&(nt, ns), &(ht, hs))) in
            naive_ticks.iter().zip(&active_ticks).enumerate()
        {
            prop_assert_eq!(
                nt + ns,
                ht + hs,
                "component {} total cycles diverged", i
            );
            prop_assert!(ht <= nt, "component {} executed extra ticks", i);
        }
    }
}
