//! The CLINT: core-local interruptor with the measurement timer.
//!
//! "The reconfiguration time is measured by the CLINT component with a
//! clock timer frequency of 5 MHz" (§IV-B): `mtime` advances once per
//! 20 fabric cycles, so every duration the paper reports is quantized
//! to 4 µs. The drivers read `mtime` over the bus exactly like the C
//! code does; the handle also exposes a zero-time view for tests.
//!
//! `mtime` is *derived*, not ticked: the value at cycle `t` is a pure
//! function of `t` and the last `mtime` write, so the component does
//! not need a tick on every divider edge — it computes the register on
//! demand when a bus access arrives and sleeps otherwise. Without this
//! the CLINT would wake the whole active-set scheduler every 20 cycles
//! for an increment nobody observes, fragmenting the kernel's idle
//! jumps (it was the single busiest component of the AXI_HWICAP paper
//! run). The observable behavior is bit-identical to an eagerly
//! ticked timer: reads see the same values, and `timer_irq` still
//! flips exactly on divider edges via a scheduled wake at the
//! crossing edge.

use std::cell::RefCell;
use std::rc::Rc;

use rvcap_axi::mm::{MmResp, SlavePort};
use rvcap_axi::regmap::{Decoded, RegisterFile};
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::state::{StateBlob, StateError};
use rvcap_sim::{Cycle, Freq, MmioAudit};

use crate::map::{CLINT_MAP, CLINT_MTIME};

#[derive(Debug, Default)]
struct Shared {
    /// `mtime` as of the CLINT's most recent *observable* event — a
    /// serviced bus access or a `timer_irq` level change. Refreshing
    /// only on those (never on an idle tick) keeps the mirror a pure
    /// function of simulated history, identical under every scheduler
    /// mode, which replay parity pins.
    mtime: u64,
    mtimecmp: u64,
}

/// Zero-time observer for the CLINT state.
#[derive(Debug, Clone)]
pub struct ClintHandle {
    shared: Rc<RefCell<Shared>>,
    divider: Cycle,
}

impl ClintHandle {
    /// `mtime` as of the CLINT's last serviced access. The timer is
    /// derived from the clock on demand, so with no bus traffic this
    /// view goes stale — drivers read the live value over the bus,
    /// exactly like the C code.
    pub fn mtime(&self) -> u64 {
        self.shared.borrow().mtime
    }

    /// Convert a tick count to microseconds at the timer frequency.
    pub fn ticks_to_us(&self, ticks: u64, fabric: Freq) -> f64 {
        fabric.cycles_to_us(ticks * self.divider)
    }
}

/// The CLINT component.
pub struct Clint {
    name: String,
    port: SlavePort,
    /// Typed decode of the register window.
    regs: RegisterFile,
    /// Fabric cycles per timer tick (20 for 5 MHz at 100 MHz).
    divider: Cycle,
    /// `mtime` value the derivation is based on: the value written by
    /// the last `mtime` store (0 at reset), …
    base_mtime: u64,
    /// … as of this many elapsed divider edges. `mtime` at cycle `t`
    /// is `base_mtime + edges(t) - base_edges` where
    /// `edges(t) = (t + 1) / divider` (the increment lands on cycles
    /// `t ≡ divider − 1 (mod divider)`, visible within that cycle).
    base_edges: u64,
    shared: Rc<RefCell<Shared>>,
    /// Timer interrupt line (mtime >= mtimecmp), for completeness.
    pub timer_irq: rvcap_sim::Signal<bool>,
}

impl Clint {
    /// Create a CLINT whose timer ticks every `divider` fabric cycles.
    pub fn new(
        name: impl Into<String>,
        port: SlavePort,
        _base: u64,
        divider: Cycle,
    ) -> (Self, ClintHandle) {
        assert!(divider > 0);
        let shared = Rc::new(RefCell::new(Shared {
            mtime: 0,
            mtimecmp: u64::MAX,
        }));
        let handle = ClintHandle {
            shared: shared.clone(),
            divider,
        };
        (
            Clint {
                name: name.into(),
                port,
                regs: RegisterFile::new(&CLINT_MAP),
                divider,
                base_mtime: 0,
                base_edges: 0,
                shared,
                timer_irq: rvcap_sim::Signal::new(false),
            },
            handle,
        )
    }

    /// The paper's configuration: 5 MHz timer on the 100 MHz fabric.
    pub fn paper(port: SlavePort, base: u64) -> (Self, ClintHandle) {
        Clint::new("clint", port, base, 20)
    }

    /// Divider edges elapsed by the end of `cycle` (the increment on
    /// an edge cycle is visible within that cycle, matching an eager
    /// increment at the top of the tick).
    fn edges(&self, cycle: Cycle) -> u64 {
        (cycle + 1) / self.divider
    }

    /// The derived `mtime` visible during `cycle`.
    fn mtime_at(&self, cycle: Cycle) -> u64 {
        self.base_mtime + (self.edges(cycle) - self.base_edges)
    }

    /// The first divider-edge cycle at or after `now`.
    fn edge_at_or_after(&self, now: Cycle) -> Cycle {
        if (now + 1).is_multiple_of(self.divider) {
            now
        } else {
            (self.edges(now) + 1) * self.divider - 1
        }
    }
}

impl Component for Clint {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        let cycle = ctx.cycle;
        let mtime = self.mtime_at(cycle);
        let cmp = self.shared.borrow().mtimecmp;
        // The irq level re-latches on divider edges only, exactly like
        // an eagerly ticked timer; the hint schedules a tick on the
        // next edge whenever the latched level disagrees with the
        // comparison. The handle mirror refreshes only on observable
        // events (a level change here, a serviced access below) so its
        // value is schedule-independent.
        if (cycle + 1).is_multiple_of(self.divider) {
            let want = mtime >= cmp;
            if self.timer_irq.get() != want {
                self.timer_irq.set(want);
                self.shared.borrow_mut().mtime = mtime;
            }
        }
        if let Some(req) = self.port.try_take(cycle) {
            self.shared.borrow_mut().mtime = mtime;
            let resp = match self.regs.decode(&req) {
                Decoded::Read { def, bytes } => {
                    let v = match def.offset {
                        CLINT_MTIME => mtime,
                        _ => cmp,
                    };
                    MmResp::data(v, bytes, true)
                }
                Decoded::Write { def, value, .. } => {
                    let mut sh = self.shared.borrow_mut();
                    match def.offset {
                        CLINT_MTIME => {
                            // Rebase the derivation: `value` is what a
                            // read during this cycle returns, and the
                            // count resumes from it on the next edge.
                            self.base_mtime = value;
                            self.base_edges = self.edges(cycle);
                            sh.mtime = value;
                        }
                        _ => sh.mtimecmp = value,
                    }
                    MmResp::write_ack()
                }
                Decoded::Reject => MmResp::err(),
            };
            let _ = self.port.try_respond(cycle, resp);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.port.req.is_empty() {
            return Some(now);
        }
        // `mtime` is derived on demand, so the only event that needs a
        // tick with no bus traffic is a `timer_irq` level change — and
        // those land on divider edges.
        let level = self.timer_irq.get();
        let cmp = self.shared.borrow().mtimecmp;
        let want = self.mtime_at(now) >= cmp;
        if level != want {
            // A write moved the comparison mid-interval: re-latch on
            // the next edge, like the eager timer would.
            return Some(self.edge_at_or_after(now));
        }
        if level {
            // High, and mtime only grows: the level holds until a
            // write, which arrives through the request channel.
            return Some(Cycle::MAX);
        }
        // Low and rising when mtime reaches mtimecmp: that takes
        // `cmp - base_mtime` edges past the base point, landing on
        // cycle `k * divider - 1`. Saturate to "never" on overflow
        // (the reset mtimecmp is u64::MAX).
        let at = cmp
            .checked_sub(self.base_mtime)
            .and_then(|need| self.base_edges.checked_add(need))
            .and_then(|k| k.checked_mul(self.divider))
            .and_then(|c| c.checked_sub(1));
        Some(at.unwrap_or(Cycle::MAX))
    }

    fn wake_sources(&self, waker: &rvcap_sim::Waker) -> rvcap_sim::WakePolicy {
        // The timer edge is a pure time-based deadline (post-tick
        // hint); bus reads/writes are the only external input.
        self.port.req.subscribe_wake(waker.clone());
        rvcap_sim::WakePolicy::Wired
    }

    fn max_batch(&self, _now: Cycle) -> Option<Cycle> {
        // Deliberately no window: the CLINT is due only for one-shot
        // events — a queued bus access, or the exact divider edge where
        // `timer_irq` re-latches. Its event horizon caps fused windows
        // through the kernel's deadline heap instead (`next_activity`
        // returns the precise interrupt edge while the CLINT sleeps),
        // so a timer firing mid-stream truncates the window to land on
        // its exact cycle.
        None
    }

    fn mmio_audit(&self) -> Option<MmioAudit> {
        Some(self.regs.audit())
    }

    fn save_state(&self) -> Option<StateBlob> {
        let sh = self.shared.borrow();
        let mut b = StateBlob::new("soc.clint", 1);
        b.put("port_req", self.port.req.save_state());
        b.put("regs", self.regs.save_state());
        b.put_u64("divider", self.divider);
        b.put_u64("base_mtime", self.base_mtime);
        b.put_u64("base_edges", self.base_edges);
        b.put_u64("mtime", sh.mtime);
        b.put_u64("mtimecmp", sh.mtimecmp);
        b.put_bool("timer_irq", self.timer_irq.get());
        Some(b)
    }

    fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("soc.clint", 1)?;
        if state.get_u64("divider")? != self.divider {
            return Err(state.structure_error(format!(
                "divider mismatch: instance {}, state {}",
                self.divider,
                state.get_u64("divider")?
            )));
        }
        self.port.req.restore_state(state.get("port_req")?)?;
        self.regs.restore_state(state.get("regs")?)?;
        self.base_mtime = state.get_u64("base_mtime")?;
        self.base_edges = state.get_u64("base_edges")?;
        {
            let mut sh = self.shared.borrow_mut();
            sh.mtime = state.get_u64("mtime")?;
            sh.mtimecmp = state.get_u64("mtimecmp")?;
        }
        self.timer_irq.set(state.get_bool("timer_irq")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{CLINT_BASE, CLINT_MTIMECMP};
    use rvcap_axi::mm::{link, MmReq};
    use rvcap_sim::{Freq, Simulator};

    fn rig() -> (Simulator, rvcap_axi::MasterPort, ClintHandle) {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("clint", 2);
        let (clint, h) = Clint::paper(s, CLINT_BASE);
        sim.register(Box::new(clint));
        (sim, m, h)
    }

    #[test]
    fn mtime_ticks_at_5mhz() {
        let (mut sim, m, h) = rig();
        sim.step_n(199);
        // Read during cycles 199..: 200 elapsed cycles / 20 = 10. The
        // timer is derived on demand, so the check reads over the bus
        // (and completes well before the next edge at 219).
        m.try_issue(sim.now(), MmReq::read(CLINT_BASE + CLINT_MTIME, 8))
            .unwrap();
        let mut got = None;
        sim.run_until(10, || {
            got = m.resp.force_pop();
            got.is_some()
        })
        .unwrap();
        assert_eq!(got.unwrap().data, 10);
        assert_eq!(h.mtime(), 10, "handle mirrors the serviced value");
        assert_eq!(h.ticks_to_us(10, Freq::FABRIC_100MHZ), 2.0);
    }

    #[test]
    fn mtime_readable_over_bus() {
        let (mut sim, m, h) = rig();
        sim.step_n(100);
        m.try_issue(sim.now(), MmReq::read(CLINT_BASE + CLINT_MTIME, 8))
            .unwrap();
        let mut got = None;
        sim.run_until(100, || {
            got = m.resp.force_pop();
            got.is_some()
        })
        .unwrap();
        let v = got.unwrap().data;
        assert!(v >= 5 && v <= h.mtime(), "mtime over bus: {v}");
    }

    #[test]
    fn mtimecmp_raises_timer_irq() {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("clint", 2);
        let (clint, _h) = Clint::paper(s, CLINT_BASE);
        let irq = clint.timer_irq.clone();
        sim.register(Box::new(clint));
        m.try_issue(0, MmReq::write(CLINT_BASE + CLINT_MTIMECMP, 3, 8))
            .unwrap();
        sim.run_until(100, || m.resp.force_pop().is_some()).unwrap();
        assert!(!irq.get());
        sim.step_n(100);
        assert!(irq.get());
    }
}
