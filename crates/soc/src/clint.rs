//! The CLINT: core-local interruptor with the measurement timer.
//!
//! "The reconfiguration time is measured by the CLINT component with a
//! clock timer frequency of 5 MHz" (§IV-B): `mtime` advances once per
//! 20 fabric cycles, so every duration the paper reports is quantized
//! to 4 µs. The drivers read `mtime` over the bus exactly like the C
//! code does; the handle also exposes a zero-time view for tests.

use std::cell::RefCell;
use std::rc::Rc;

use rvcap_axi::mm::{MmResp, SlavePort};
use rvcap_axi::regmap::{Decoded, RegisterFile};
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::{Cycle, Freq, MmioAudit};

use crate::map::{CLINT_MAP, CLINT_MTIME};

#[derive(Debug, Default)]
struct Shared {
    mtime: u64,
    mtimecmp: u64,
}

/// Zero-time observer for the CLINT state.
#[derive(Debug, Clone)]
pub struct ClintHandle {
    shared: Rc<RefCell<Shared>>,
    divider: Cycle,
}

impl ClintHandle {
    /// Current `mtime` (timer ticks).
    pub fn mtime(&self) -> u64 {
        self.shared.borrow().mtime
    }

    /// Convert a tick count to microseconds at the timer frequency.
    pub fn ticks_to_us(&self, ticks: u64, fabric: Freq) -> f64 {
        fabric.cycles_to_us(ticks * self.divider)
    }
}

/// The CLINT component.
pub struct Clint {
    name: String,
    port: SlavePort,
    /// Typed decode of the register window.
    regs: RegisterFile,
    /// Fabric cycles per timer tick (20 for 5 MHz at 100 MHz).
    divider: Cycle,
    shared: Rc<RefCell<Shared>>,
    /// Timer interrupt line (mtime >= mtimecmp), for completeness.
    pub timer_irq: rvcap_sim::Signal<bool>,
}

impl Clint {
    /// Create a CLINT whose timer ticks every `divider` fabric cycles.
    pub fn new(
        name: impl Into<String>,
        port: SlavePort,
        _base: u64,
        divider: Cycle,
    ) -> (Self, ClintHandle) {
        assert!(divider > 0);
        let shared = Rc::new(RefCell::new(Shared {
            mtime: 0,
            mtimecmp: u64::MAX,
        }));
        let handle = ClintHandle {
            shared: shared.clone(),
            divider,
        };
        (
            Clint {
                name: name.into(),
                port,
                regs: RegisterFile::new(&CLINT_MAP),
                divider,
                shared,
                timer_irq: rvcap_sim::Signal::new(false),
            },
            handle,
        )
    }

    /// The paper's configuration: 5 MHz timer on the 100 MHz fabric.
    pub fn paper(port: SlavePort, base: u64) -> (Self, ClintHandle) {
        Clint::new("clint", port, base, 20)
    }
}

impl Component for Clint {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        let cycle = ctx.cycle;
        if (cycle + 1).is_multiple_of(self.divider) {
            let mut sh = self.shared.borrow_mut();
            sh.mtime += 1;
            self.timer_irq.set(sh.mtime >= sh.mtimecmp);
        }
        if let Some(req) = self.port.try_take(cycle) {
            let resp = match self.regs.decode(&req) {
                Decoded::Read { def, bytes } => {
                    let sh = self.shared.borrow();
                    let v = match def.offset {
                        CLINT_MTIME => sh.mtime,
                        _ => sh.mtimecmp,
                    };
                    MmResp::data(v, bytes, true)
                }
                Decoded::Write { def, value, .. } => {
                    let mut sh = self.shared.borrow_mut();
                    match def.offset {
                        CLINT_MTIME => sh.mtime = value,
                        _ => sh.mtimecmp = value,
                    }
                    MmResp::write_ack()
                }
                Decoded::Reject => MmResp::err(),
            };
            let _ = self.port.try_respond(cycle, resp);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.port.req.is_empty() {
            return Some(now);
        }
        // The timer increments on cycles t with (t + 1) % divider == 0,
        // i.e. t ≡ divider − 1 (mod divider): wake at the next such
        // edge. (mtime must keep counting even with no bus traffic —
        // the measurement drivers depend on it.)
        let phase = (now + 1) % self.divider;
        Some(if phase == 0 {
            now
        } else {
            now + (self.divider - phase)
        })
    }

    fn mmio_audit(&self) -> Option<MmioAudit> {
        Some(self.regs.audit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{CLINT_BASE, CLINT_MTIMECMP};
    use rvcap_axi::mm::{link, MmReq};
    use rvcap_sim::{Freq, Simulator};

    fn rig() -> (Simulator, rvcap_axi::MasterPort, ClintHandle) {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("clint", 2);
        let (clint, h) = Clint::paper(s, CLINT_BASE);
        sim.register(Box::new(clint));
        (sim, m, h)
    }

    #[test]
    fn mtime_ticks_at_5mhz() {
        let (mut sim, _m, h) = rig();
        sim.step_n(200);
        assert_eq!(h.mtime(), 10); // 200 cycles / 20
        assert_eq!(h.ticks_to_us(10, Freq::FABRIC_100MHZ), 2.0);
    }

    #[test]
    fn mtime_readable_over_bus() {
        let (mut sim, m, h) = rig();
        sim.step_n(100);
        m.try_issue(sim.now(), MmReq::read(CLINT_BASE + CLINT_MTIME, 8))
            .unwrap();
        let mut got = None;
        sim.run_until(100, || {
            got = m.resp.force_pop();
            got.is_some()
        })
        .unwrap();
        let v = got.unwrap().data;
        assert!(v >= 5 && v <= h.mtime(), "mtime over bus: {v}");
    }

    #[test]
    fn mtimecmp_raises_timer_irq() {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("clint", 2);
        let (clint, _h) = Clint::paper(s, CLINT_BASE);
        let irq = clint.timer_irq.clone();
        sim.register(Box::new(clint));
        m.try_issue(0, MmReq::write(CLINT_BASE + CLINT_MTIMECMP, 3, 8))
            .unwrap();
        sim.run_until(100, || m.resp.force_pop().is_some()).unwrap();
        assert!(!irq.get());
        sim.step_n(100);
        assert!(irq.get());
    }
}
