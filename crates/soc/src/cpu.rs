//! The CPU driver host: co-routine execution of driver code against
//! the simulated SoC.
//!
//! The paper's drivers are C functions running bare-metal on Ariane.
//! Here they are Rust functions (in `rvcap-core::drivers`) that take a
//! [`SocCore`] and perform MMIO through it. Each access:
//!
//! 1. charges the pipeline's issue cost (store-buffer drain — Ariane
//!    must not reorder or speculate non-cacheable accesses),
//! 2. pushes the request onto the CPU's AXI master port and **advances
//!    the whole simulation** until the response returns,
//! 3. charges the retire cost.
//!
//! The simulated cycles consumed are therefore exactly the cycles the
//! core would stall — the quantity behind the paper's HWICAP
//! measurements. Pure computation between accesses is charged with
//! [`SocCore::compute`] (the driver constants are documented where
//! they are used).
//!
//! [`InterpreterBus`] bridges the `rvcap-rv64` interpreter to the same
//! port for instruction-accurate runs (the loop-unrolling study): the
//! interpreter's non-bus cycles are forwarded through
//! [`rvcap_rv64::Bus::advance`] so peripherals stay in lockstep.

use rvcap_axi::mm::{MasterPort, MmReq, MmResp};
use rvcap_sim::state::{SimState, StateBlob, StateError};
use rvcap_sim::{Cycle, Simulator, StallReport};

use crate::ddr::DdrHandle;
use crate::map::is_cacheable;

/// Pipeline cost of a non-cacheable access, outside the bus itself.
#[derive(Debug, Clone, Copy)]
pub struct CpuTiming {
    /// Cycles to drain/issue before the request hits the bus.
    pub issue: Cycle,
    /// Cycles to retire after the response.
    pub retire: Cycle,
}

impl Default for CpuTiming {
    fn default() -> Self {
        CpuTiming {
            issue: 4,
            retire: 2,
        }
    }
}

/// A bus error surfaced to driver code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusError {
    /// Faulting address.
    pub addr: u64,
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bus error at {:#x}", self.addr)
    }
}

impl std::error::Error for BusError {}

/// The simulation container + CPU master port: what driver code runs
/// against.
pub struct SocCore {
    /// The simulator owning every registered component.
    pub sim: Simulator,
    port: MasterPort,
    timing: CpuTiming,
    mmio_reads: u64,
    mmio_writes: u64,
}

/// Safety net: no single MMIO transaction may take this long.
const TRANSACTION_LIMIT: Cycle = 1_000_000;

impl SocCore {
    /// Wrap a simulator and the CPU's master port.
    pub fn new(sim: Simulator, port: MasterPort) -> Self {
        SocCore {
            sim,
            port,
            timing: CpuTiming::default(),
            mmio_reads: 0,
            mmio_writes: 0,
        }
    }

    /// Override CPU access timing.
    pub fn with_timing(mut self, timing: CpuTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.sim.now()
    }

    /// MMIO reads performed.
    pub fn mmio_reads(&self) -> u64 {
        self.mmio_reads
    }

    /// MMIO writes performed.
    pub fn mmio_writes(&self) -> u64 {
        self.mmio_writes
    }

    /// CPU-local computation: advances the clock without bus traffic.
    pub fn compute(&mut self, cycles: Cycle) {
        self.sim.step_n(cycles);
    }

    /// Advance until `pred` is true (polling loops, IRQ waits).
    /// Returns cycles waited, or the kernel's [`StallReport`] after
    /// `limit` cycles.
    pub fn wait_until(
        &mut self,
        limit: Cycle,
        pred: impl FnMut() -> bool,
    ) -> Result<Cycle, StallReport> {
        self.sim.run_until(limit, pred)
    }

    fn transact(&mut self, req: MmReq) -> Result<MmResp, BusError> {
        let addr = req.addr;
        self.sim.step_n(self.timing.issue);
        // Enqueue (retrying while the port is full).
        let mut req = req;
        loop {
            match self.port.try_issue(self.sim.now(), req) {
                Ok(()) => break,
                Err(r) => {
                    req = r;
                    self.sim.step();
                }
            }
        }
        // Block until the response arrives. Driving this wait through
        // `run_until` (rather than a step-at-a-time loop) lets the
        // kernel fast-forward across the idle portion of the round
        // trip — MMIO-heavy drivers like HWICAP spend most of their
        // simulated time exactly here. A transaction that never
        // completes is a wiring bug, so it stays fatal, but with the
        // kernel's full stall diagnostic.
        let resp_fifo = self.port.resp.clone();
        if let Err(report) = self
            .sim
            .run_until(TRANSACTION_LIMIT, || !resp_fifo.is_empty())
        {
            panic!("MMIO to {addr:#x} never completed: {report}");
        }
        let resp = resp_fifo.force_pop().expect("response checked non-empty");
        self.sim.step_n(self.timing.retire);
        if resp.error {
            return Err(BusError { addr });
        }
        Ok(resp)
    }

    /// Blocking MMIO read (panics on bus error — driver code treats
    /// that as fatal, like an unhandled access fault).
    pub fn mmio_read(&mut self, addr: u64, bytes: u8) -> u64 {
        self.try_mmio_read(addr, bytes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Blocking MMIO read returning bus errors.
    pub fn try_mmio_read(&mut self, addr: u64, bytes: u8) -> Result<u64, BusError> {
        self.mmio_reads += 1;
        self.transact(MmReq::read(addr, bytes)).map(|r| r.data)
    }

    /// Blocking MMIO write (panics on bus error).
    pub fn mmio_write(&mut self, addr: u64, value: u64, bytes: u8) {
        self.try_mmio_write(addr, value, bytes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Blocking MMIO write returning bus errors.
    pub fn try_mmio_write(&mut self, addr: u64, value: u64, bytes: u8) -> Result<(), BusError> {
        self.mmio_writes += 1;
        self.transact(MmReq::write(addr, value, bytes)).map(|_| ())
    }

    /// 32-bit register read (the natural width for control registers).
    pub fn read_reg(&mut self, addr: u64) -> u32 {
        self.mmio_read(addr, 4) as u32
    }

    /// 32-bit register write.
    pub fn write_reg(&mut self, addr: u64, value: u32) {
        self.mmio_write(addr, value as u64, 4);
    }

    /// Checkpoint the whole SoC: the simulator's [`SimState`] plus the
    /// host-side CPU state the simulator cannot see — the CPU master
    /// port's response FIFO (the CPU is its unique consumer; the
    /// request FIFO is saved by the crossbar that consumes it) and the
    /// MMIO operation counters.
    pub fn checkpoint(&self) -> Result<SocState, StateError> {
        let mut cpu = StateBlob::new("soc.cpu", 1);
        cpu.put("port_resp", self.port.resp.save_state());
        cpu.put_u64("issue", self.timing.issue);
        cpu.put_u64("retire", self.timing.retire);
        cpu.put_u64("mmio_reads", self.mmio_reads);
        cpu.put_u64("mmio_writes", self.mmio_writes);
        Ok(SocState {
            sim: self.sim.checkpoint()?,
            cpu,
        })
    }

    /// Restore a checkpoint captured by [`SocCore::checkpoint`] — from
    /// this core or a structurally identical one built by the same
    /// construction code (the warm-boot fork path). Driver coroutines
    /// live on the host stack and cannot be captured: restore only at
    /// driver quiescence (no MMIO transaction in flight in host code).
    pub fn restore(&mut self, state: &SocState) -> Result<(), StateError> {
        state.cpu.expect("soc.cpu", 1)?;
        for (field, have) in [("issue", self.timing.issue), ("retire", self.timing.retire)] {
            let want = state.cpu.get_u64(field)?;
            if want != have {
                return Err(state.cpu.structure_error(format!(
                    "cpu timing mismatch: {field} instance {have}, state {want}"
                )));
            }
        }
        self.sim.restore(&state.sim)?;
        self.port.resp.restore_state(state.cpu.get("port_resp")?)?;
        self.mmio_reads = state.cpu.get_u64("mmio_reads")?;
        self.mmio_writes = state.cpu.get_u64("mmio_writes")?;
        Ok(())
    }
}

/// A whole-SoC checkpoint: the simulator state plus the host-side CPU
/// state ([`SocCore::checkpoint`]).
#[derive(Debug, Clone)]
pub struct SocState {
    /// Every registered component, the cycle, tick accounting, and the
    /// sanitizer observation state.
    pub sim: SimState,
    /// CPU master-port response FIFO, timing config, MMIO counters.
    pub cpu: StateBlob,
}

impl SocState {
    /// The first replay-parity difference between two SoC checkpoints,
    /// or `None` when equivalent. Extends [`SimState::parity_diff`]
    /// with the CPU-side state.
    pub fn parity_diff(&self, other: &SocState) -> Option<String> {
        if let Some(d) = self.sim.parity_diff(&other.sim) {
            return Some(d);
        }
        if self.cpu != other.cpu {
            return Some("cpu: host-side state differs".into());
        }
        None
    }

    /// True when [`SocState::parity_diff`] finds nothing.
    pub fn parity_eq(&self, other: &SocState) -> bool {
        self.parity_diff(other).is_none()
    }
}

/// Bridges the RV64 interpreter to a [`SocCore`]: cacheable accesses
/// hit the data cache (backdoor DDR, 1 cycle); non-cacheable accesses
/// run the full simulated bus round trip; non-bus instruction cycles
/// advance the simulation in lockstep.
pub struct InterpreterBus<'a> {
    core: &'a mut SocCore,
    ddr: DdrHandle,
    irq: Option<(crate::plic::PlicHandle, u32)>,
}

impl<'a> InterpreterBus<'a> {
    /// Bridge `core`, using `ddr` as the cacheable backing store.
    pub fn new(core: &'a mut SocCore, ddr: DdrHandle) -> Self {
        InterpreterBus {
            core,
            ddr,
            irq: None,
        }
    }

    /// Wire the machine external interrupt line to a PLIC source:
    /// `wfi` and trap delivery in the interpreter then follow the
    /// simulated interrupt controller.
    pub fn with_irq(mut self, plic: crate::plic::PlicHandle, source: u32) -> Self {
        self.irq = Some((plic, source));
        self
    }
}

impl rvcap_rv64::Bus for InterpreterBus<'_> {
    fn load(&mut self, addr: u64, bytes: u8) -> (u64, u64) {
        if is_cacheable(addr) {
            let raw = self.ddr.read_bytes(addr, bytes as usize);
            let mut buf = [0u8; 8];
            buf[..bytes as usize].copy_from_slice(&raw);
            // D$ hit.
            (u64::from_le_bytes(buf), 1)
        } else {
            let t0 = self.core.now();
            let v = self.core.mmio_read(addr, bytes);
            (v, self.core.now() - t0)
        }
    }

    fn store(&mut self, addr: u64, bytes: u8, value: u64) -> u64 {
        if is_cacheable(addr) {
            self.ddr
                .write_bytes(addr, &value.to_le_bytes()[..bytes as usize]);
            1
        } else {
            let t0 = self.core.now();
            self.core.mmio_write(addr, value, bytes);
            self.core.now() - t0
        }
    }

    fn advance(&mut self, cycles: u64) {
        self.core.compute(cycles);
    }

    fn irq_pending(&mut self) -> bool {
        self.irq
            .as_ref()
            .is_some_and(|(plic, src)| plic.is_pending(*src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clint::Clint;
    use crate::ddr::{Ddr, DdrConfig};
    use crate::map::*;
    use rvcap_axi::crossbar::{Crossbar, SlaveRegion};
    use rvcap_axi::mm::link;
    use rvcap_sim::Freq;

    /// A minimal SoC: CPU → crossbar → {CLINT, DDR}.
    fn mini_soc() -> (SocCore, crate::clint::ClintHandle, DdrHandle) {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (cpu_m, cpu_s) = link("cpu", 1);
        let (clint_m, clint_s) = link("clint", 2);
        let (ddr_m, ddr_s) = link("ddr", 8);
        let xbar = Crossbar::new(
            "xbar",
            vec![cpu_s],
            vec![
                (SlaveRegion::new("clint", CLINT_BASE, CLINT_SIZE), clint_m),
                (SlaveRegion::new("ddr", DDR_BASE, 1 << 20), ddr_m),
            ],
        );
        let (clint, clint_h) = Clint::paper(clint_s, CLINT_BASE);
        let (ddr, ddr_h) = Ddr::new(
            "ddr",
            ddr_s,
            DDR_BASE,
            DdrConfig {
                size: 1 << 20,
                ..DdrConfig::default()
            },
        );
        sim.register(Box::new(xbar));
        sim.register(Box::new(clint));
        sim.register(Box::new(ddr));
        (SocCore::new(sim, cpu_m), clint_h, ddr_h)
    }

    #[test]
    fn mmio_round_trip_takes_realistic_cycles() {
        let (mut core, _c, ddr) = mini_soc();
        ddr.write_bytes(DDR_BASE, &0x1234_5678u32.to_le_bytes());
        let t0 = core.now();
        let v = core.mmio_read(DDR_BASE, 4);
        let took = core.now() - t0;
        assert_eq!(v, 0x1234_5678);
        // issue(4) + xbar(2+2) + ddr latency(22) + retire(2) + hops.
        assert!((30..=50).contains(&took), "round trip {took} cycles");
    }

    #[test]
    fn clint_time_measurement_pattern() {
        // The paper's measurement idiom: read mtime, do work, read
        // mtime.
        let (mut core, _h, _d) = mini_soc();
        let t0 = core.mmio_read(CLINT_BASE + CLINT_MTIME, 8);
        core.compute(2000); // 20 µs of "work"
        let t1 = core.mmio_read(CLINT_BASE + CLINT_MTIME, 8);
        let ticks = t1 - t0;
        // 2000 cycles = 100 ticks, plus the read round trips.
        assert!((100..=105).contains(&ticks), "ticks {ticks}");
    }

    #[test]
    fn bus_error_surfaces() {
        let (mut core, _c, _d) = mini_soc();
        let err = core.try_mmio_read(0xDEAD_0000, 4).unwrap_err();
        assert_eq!(err.addr, 0xDEAD_0000);
    }

    #[test]
    fn counters_track_ops() {
        let (mut core, _c, _d) = mini_soc();
        core.mmio_write(DDR_BASE, 1, 8);
        core.mmio_read(DDR_BASE, 8);
        core.read_reg(DDR_BASE);
        assert_eq!(core.mmio_writes(), 1);
        assert_eq!(core.mmio_reads(), 2);
    }

    #[test]
    fn interpreter_runs_against_the_soc() {
        let (mut core, clint_h, ddr) = mini_soc();
        // A program that stores a counter into DDR (cacheable) and
        // reads mtime (non-cacheable, full round trip).
        let program = rvcap_rv64::assemble(
            "
            li a0, 0x40000000
            slli a0, a0, 1        # DDR_BASE
            li a1, 777
            sd a1, 0(a0)
            li a2, 0x02000000     # CLINT
            lui a3, 0xC          # 0xC000
            addi a3, a3, -8      # 0xBFF8
            add a2, a2, a3
            ld a4, 0(a2)          # mtime over the bus
            ecall
            ",
            0x1_0000,
        )
        .unwrap();
        let mut cpu = rvcap_rv64::Cpu::new(program, 0x1_0000);
        let mut bus = InterpreterBus::new(&mut core, ddr.clone());
        let res = cpu.run(&mut bus, 1000);
        assert_eq!(res.exit, rvcap_rv64::RunExit::Halted);
        assert_eq!(
            u64::from_le_bytes(ddr.read_bytes(DDR_BASE, 8).try_into().unwrap()),
            777
        );
        // The mtime load went over the simulated bus: sim advanced in
        // lockstep with the CPU (within a couple of cycles).
        assert!(cpu.reg(rvcap_rv64::Reg::a(4)) <= clint_h.mtime());
        let drift = core.now() as i64 - cpu.cycles as i64;
        assert!(drift.abs() < 5, "sim/CPU clock drift {drift}");
    }
}
