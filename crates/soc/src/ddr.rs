//! The DDR memory controller model.
//!
//! A 64-bit port at the fabric clock: peak 800 MB/s — comfortably
//! above the ICAP's 400 MB/s, which is why the RV-CAP datapath is
//! ICAP-limited, not memory-limited. The model keeps the three
//! first-order effects of a real controller:
//!
//! * **first-access latency** (row activate + CAS) on a fresh burst;
//! * **back-to-back streaming**: consecutive bursts of an open stream
//!   flow at one 8-byte beat per cycle with no inter-burst gap (the
//!   DMA's sequential fetch is the textbook row-buffer-friendly
//!   pattern);
//! * **refresh**: every `refresh_interval` cycles the controller
//!   stalls for `refresh_penalty` cycles (tREFI/tRFC), a ~0.5 %
//!   bandwidth tax. With the DMA's 2:1 supply surplus the stream
//!   switch's skid buffering hides refresh from the ICAP, but it is
//!   visible to latency-sensitive probes.
//!
//! Reads and writes use independent engines, mirroring AXI's separate
//! R and W channels — in acceleration mode the DMA reads the input
//! image while writing filter output without the two serializing.

use std::cell::RefCell;
use std::rc::Rc;

use rvcap_axi::mm::{MmOp, MmReq, MmResp, SlavePort};
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::state::{StateBlob, StateError, StateItem, StateValue};
use rvcap_sim::Cycle;
use std::sync::Arc;

/// DDR timing/geometry configuration.
#[derive(Debug, Clone, Copy)]
pub struct DdrConfig {
    /// Memory size in bytes.
    pub size: u64,
    /// First-beat latency of a fresh read burst (cycles).
    pub read_latency: Cycle,
    /// Write acceptance latency (posted; cycles to the B response).
    pub write_latency: Cycle,
    /// Cycles between refresh stalls (tREFI at 100 MHz ≈ 780).
    pub refresh_interval: Cycle,
    /// Length of each refresh stall (cycles).
    pub refresh_penalty: Cycle,
}

impl Default for DdrConfig {
    fn default() -> Self {
        DdrConfig {
            size: crate::map::DDR_DEFAULT_SIZE,
            read_latency: 22,
            write_latency: 6,
            refresh_interval: 780,
            refresh_penalty: 4,
        }
    }
}

/// Shared backdoor handle to DDR contents (zero-time access for
/// initialization and verification — the simulation analogue of a
/// testbench poking memory).
#[derive(Debug, Clone)]
pub struct DdrHandle {
    base: u64,
    bytes: Rc<RefCell<Vec<u8>>>,
}

impl DdrHandle {
    /// Copy `data` into DDR at absolute address `addr`.
    pub fn write_bytes(&self, addr: u64, data: &[u8]) {
        let off = (addr - self.base) as usize;
        self.bytes.borrow_mut()[off..off + data.len()].copy_from_slice(data);
    }

    /// Read `len` bytes at absolute address `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let off = (addr - self.base) as usize;
        self.bytes.borrow()[off..off + len].to_vec()
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.borrow().len()
    }
}

enum ReadState {
    Idle,
    /// Waiting out first-beat latency.
    Latency {
        until: Cycle,
        req: MmReq,
    },
    /// Streaming burst beats.
    Streaming {
        addr: u64,
        beat_bytes: u8,
        remaining: u16,
    },
}

/// The DDR controller component.
pub struct Ddr {
    name: String,
    port: SlavePort,
    base: u64,
    bytes: Rc<RefCell<Vec<u8>>>,
    cfg: DdrConfig,
    read: ReadState,
    /// Posted-write pipeline: writes commit (and ack) in order, one
    /// per cycle, each `write_latency` after acceptance.
    write_pipe: std::collections::VecDeque<(Cycle, MmReq)>,
    refresh_at: Cycle,
    refresh_until: Cycle,
    /// End address of the last completed/streaming read (row-buffer
    /// hit detection for sequential bursts).
    last_read_end: Option<u64>,
    /// Reads served / beats streamed (bench counters).
    beats_read: u64,
    beats_written: u64,
    refreshes: u64,
}

impl Ddr {
    /// Create a DDR at `base` with `cfg`.
    pub fn new(
        name: impl Into<String>,
        port: SlavePort,
        base: u64,
        cfg: DdrConfig,
    ) -> (Self, DdrHandle) {
        let bytes = Rc::new(RefCell::new(vec![0u8; cfg.size as usize]));
        let handle = DdrHandle {
            base,
            bytes: bytes.clone(),
        };
        (
            Ddr {
                name: name.into(),
                port,
                base,
                bytes,
                cfg,
                read: ReadState::Idle,
                write_pipe: std::collections::VecDeque::new(),
                refresh_at: cfg.refresh_interval,
                refresh_until: 0,
                last_read_end: None,
                beats_read: 0,
                beats_written: 0,
                refreshes: 0,
            },
            handle,
        )
    }

    /// Refresh stalls taken so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    fn read_u64(&self, addr: u64, bytes: u8) -> u64 {
        let off = (addr - self.base) as usize;
        let mem = self.bytes.borrow();
        let mut buf = [0u8; 8];
        buf[..bytes as usize].copy_from_slice(&mem[off..off + bytes as usize]);
        u64::from_le_bytes(buf)
    }

    fn in_bounds(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr - self.base + len <= self.cfg.size
    }
}

impl Component for Ddr {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        let cycle = ctx.cycle;

        // Refresh bookkeeping: a periodic all-stop window.
        if cycle >= self.refresh_at {
            self.refresh_until = cycle + self.cfg.refresh_penalty;
            self.refresh_at = cycle + self.cfg.refresh_interval;
            self.refreshes += 1;
        }
        let refreshing = cycle < self.refresh_until;

        // Write engine: commit/ack the oldest posted write, one per
        // cycle (writes pipeline — a real controller's write queue).
        if !refreshing {
            if let Some(&(done, req)) = self.write_pipe.front() {
                if done <= cycle {
                    if let MmOp::Write {
                        data,
                        bytes,
                        posted,
                    } = req.op
                    {
                        let ok = self.in_bounds(req.addr, bytes as u64);
                        if ok {
                            let off = (req.addr - self.base) as usize;
                            self.bytes.borrow_mut()[off..off + bytes as usize]
                                .copy_from_slice(&data.to_le_bytes()[..bytes as usize]);
                        }
                        if posted {
                            // No B response: commit and move on. An
                            // out-of-bounds posted write is dropped
                            // (and would be caught by the crossbar's
                            // decode in any real configuration).
                            if ok {
                                self.beats_written += 1;
                            }
                            self.write_pipe.pop_front();
                        } else {
                            let resp = if ok {
                                MmResp::write_ack()
                            } else {
                                MmResp::err()
                            };
                            if self.port.try_respond(cycle, resp).is_ok() {
                                if ok {
                                    self.beats_written += 1;
                                }
                                self.write_pipe.pop_front();
                            }
                        }
                    }
                }
            }
        }

        // Read engine.
        if !refreshing {
            match std::mem::replace(&mut self.read, ReadState::Idle) {
                ReadState::Idle => {}
                ReadState::Latency { until, req } => {
                    if until <= cycle {
                        match req.op {
                            MmOp::Read { bytes } => {
                                if self.in_bounds(req.addr, bytes as u64) {
                                    let v = self.read_u64(req.addr, bytes);
                                    if self
                                        .port
                                        .try_respond(cycle, MmResp::data(v, bytes, true))
                                        .is_ok()
                                    {
                                        self.beats_read += 1;
                                    } else {
                                        self.read = ReadState::Latency { until, req };
                                    }
                                } else {
                                    let _ = self.port.try_respond(cycle, MmResp::err());
                                }
                            }
                            MmOp::ReadBurst { beats, beat_bytes } => {
                                if self.in_bounds(req.addr, beats as u64 * beat_bytes as u64) {
                                    self.read = ReadState::Streaming {
                                        addr: req.addr,
                                        beat_bytes,
                                        remaining: beats,
                                    };
                                    // First beat flows this very cycle.
                                    self.stream_beat(cycle);
                                } else {
                                    let _ = self.port.try_respond(cycle, MmResp::err());
                                }
                            }
                            MmOp::Write { .. } => unreachable!("write in read engine"),
                        }
                    } else {
                        self.read = ReadState::Latency { until, req };
                    }
                }
                s @ ReadState::Streaming { .. } => {
                    self.read = s;
                    self.stream_beat(cycle);
                }
            }
        }

        // Accept new requests: writes go to the (single-entry) write
        // engine, reads to the read engine. One request per cycle from
        // the port; engines run concurrently.
        let can_take_write = self.write_pipe.len() < 8;
        let can_take_read = matches!(self.read, ReadState::Idle);
        if can_take_write || can_take_read {
            if let Some(req) = self.port.req.peek() {
                let is_write = matches!(req.op, MmOp::Write { .. });
                if (is_write && can_take_write) || (!is_write && can_take_read) {
                    let req = self.port.try_take(cycle).expect("peeked");
                    if is_write {
                        self.write_pipe
                            .push_back((cycle + self.cfg.write_latency, req));
                    } else {
                        // Row-buffer hit: a burst continuing exactly
                        // where the previous one ended streams with no
                        // fresh activate/CAS latency — the DMA's
                        // sequential fetch rides an open row.
                        let sequential = self.last_read_end == Some(req.addr);
                        self.read = ReadState::Latency {
                            until: if sequential {
                                cycle
                            } else {
                                cycle + self.cfg.read_latency
                            },
                            req,
                        };
                    }
                }
            }
        }
    }

    fn busy(&self) -> bool {
        !matches!(self.read, ReadState::Idle) || !self.write_pipe.is_empty()
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.port.req.is_empty() {
            return Some(now);
        }
        // The refresh schedule is observable work (it moves
        // `refresh_at` forward and shifts future stalls), so its next
        // edge is always a wake-up candidate — the controller never
        // declares unbounded idleness.
        let mut at = self.refresh_at.max(now);
        match &self.read {
            ReadState::Idle => {}
            ReadState::Latency { until, .. } => at = at.min((*until).max(now)),
            // A streaming burst moves a beat (or retries a full
            // response FIFO) every cycle.
            ReadState::Streaming { .. } => return Some(now),
        }
        if let Some(&(done, _)) = self.write_pipe.front() {
            at = at.min(done.max(now));
        }
        Some(at)
    }

    fn wake_sources(&self, waker: &rvcap_sim::Waker) -> rvcap_sim::WakePolicy {
        // Refresh edges, read latency, and write drains are all
        // time-based deadlines covered by the post-tick hint; the only
        // external input is the request channel.
        self.port.req.subscribe_wake(waker.clone());
        rvcap_sim::WakePolicy::Wired
    }

    fn max_batch(&self, now: Cycle) -> Option<Cycle> {
        // Fusible only while streaming a read burst with an idle write
        // queue: `Streaming` pins the hint to "now" until the last beat
        // is delivered, which takes at least `remaining` respond
        // attempts at one per cycle (a full response FIFO only
        // stretches the burst). The window also stops at the next
        // refresh edge, keeping the tREFI bookkeeping on a negotiation
        // boundary. A queued read request mid-burst is fine — it stays
        // queued until the engine idles — but pending writes commit to
        // memory on their own schedule and are left to per-cycle
        // stepping.
        if !self.write_pipe.is_empty() {
            return None;
        }
        // Guaranteed due cycles from the read engine's in-flight work,
        // and the address where that work's beat stream will end.
        let (mut w, end) = match self.read {
            ReadState::Streaming {
                addr,
                beat_bytes,
                remaining,
            } => (
                remaining as Cycle,
                Some(addr + remaining as u64 * beat_bytes as u64),
            ),
            ReadState::Latency { until, req } => {
                // Mid-latency the controller is only due because a
                // queued *read* pins the hint to "now" (reads are not
                // accepted while the engine is busy, so it stays queued
                // and keeps the hint pinned); the in-flight burst's
                // beats then follow the remaining latency cycles with
                // no gap. A latency that already elapsed — a stalled
                // stream start — is due on its own.
                if until > now {
                    match self.port.req.peek() {
                        Some(q) if !matches!(q.op, MmOp::Write { .. }) => {}
                        _ => return None,
                    }
                }
                let lat = until.saturating_sub(now);
                match req.op {
                    MmOp::ReadBurst { beats, beat_bytes }
                        if self.in_bounds(req.addr, beats as u64 * beat_bytes as u64) =>
                    {
                        (
                            lat + beats as Cycle,
                            Some(req.addr + beats as u64 * beat_bytes as u64),
                        )
                    }
                    _ => (lat + 1, None),
                }
            }
            // Idle with a row-hit burst at the head of the queue: this
            // cycle's tick accepts it with zero fresh latency and beats
            // stream from the next cycle on — due now (queued request)
            // and due every beat cycle after.
            ReadState::Idle => match self.port.req.peek() {
                Some(req) => match req.op {
                    MmOp::ReadBurst { beats, beat_bytes }
                        if self.last_read_end == Some(req.addr)
                            && self.in_bounds(req.addr, beats as u64 * beat_bytes as u64) =>
                    {
                        (
                            1 + beats as Cycle,
                            Some(req.addr + beats as u64 * beat_bytes as u64),
                        )
                    }
                    _ => return None,
                },
                None => return None,
            },
        };
        // A queued read burst continuing exactly where the in-flight
        // one ends rides the open row: the engine accepts it on the
        // final beat cycle, the zero-latency `Latency` stage fires the
        // next cycle, and beats stream again — due-ness runs straight
        // through the burst boundary. The request is already queued, so
        // this claims nothing about future input. (A full response FIFO
        // only stretches the stream, which keeps the controller due.)
        if let (Some(end), Some(req)) = (end, self.port.req.peek()) {
            if let MmOp::ReadBurst { beats, beat_bytes } = req.op {
                if req.addr == end && self.in_bounds(req.addr, beats as u64 * beat_bytes as u64) {
                    w += beats as Cycle;
                }
            }
        }
        let w = w.min(self.refresh_at.saturating_sub(now));
        (w > 0).then_some(w)
    }

    fn save_state(&self) -> Option<StateBlob> {
        let mut b = StateBlob::new("soc.ddr", 1);
        b.put("port_req", self.port.req.save_state());
        b.put(
            "mem",
            StateValue::Bytes(Arc::new(self.bytes.borrow().clone())),
        );
        let (read, until, req) = match &self.read {
            ReadState::Idle => ("idle", None, StateValue::OptU64(None)),
            ReadState::Latency { until, req } => ("latency", Some(*until), req.to_state()),
            ReadState::Streaming {
                addr,
                beat_bytes,
                remaining,
            } => {
                let mut s = StateBlob::new("soc.ddr.stream", 1);
                s.put_u64("addr", *addr);
                s.put_u64("beat_bytes", *beat_bytes as u64);
                s.put_u64("remaining", *remaining as u64);
                ("streaming", None, StateValue::Blob(Box::new(s)))
            }
        };
        b.put_str("read", read);
        b.put_opt_u64("read_until", until);
        b.put("read_req", req);
        b.put_list(
            "write_pipe",
            self.write_pipe
                .iter()
                .map(|(done, req)| {
                    let mut w = StateBlob::new("soc.ddr.write", 1);
                    w.put_u64("done", *done);
                    w.put("req", req.to_state());
                    StateValue::Blob(Box::new(w))
                })
                .collect(),
        );
        b.put_u64("refresh_at", self.refresh_at);
        b.put_u64("refresh_until", self.refresh_until);
        b.put_opt_u64("last_read_end", self.last_read_end);
        b.put_u64("beats_read", self.beats_read);
        b.put_u64("beats_written", self.beats_written);
        b.put_u64("refreshes", self.refreshes);
        Some(b)
    }

    fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("soc.ddr", 1)?;
        let mem = state.get_bytes("mem")?;
        if mem.len() as u64 != self.cfg.size {
            return Err(state.structure_error(format!(
                "memory size mismatch: instance {}, state {}",
                self.cfg.size,
                mem.len()
            )));
        }
        self.port.req.restore_state(state.get("port_req")?)?;
        self.bytes.borrow_mut().copy_from_slice(mem);
        self.read = match state.get_str("read")? {
            "idle" => ReadState::Idle,
            "latency" => ReadState::Latency {
                until: state
                    .get_opt_u64("read_until")?
                    .ok_or_else(|| state.structure_error("latency state without read_until"))?,
                req: MmReq::from_state(state.get("read_req")?, "soc.ddr")?,
            },
            "streaming" => {
                let s = state.get("read_req")?.as_blob("soc.ddr")?;
                s.expect("soc.ddr.stream", 1)?;
                ReadState::Streaming {
                    addr: s.get_u64("addr")?,
                    beat_bytes: s.get_u64("beat_bytes")? as u8,
                    remaining: s.get_u64("remaining")? as u16,
                }
            }
            other => return Err(state.structure_error(format!("unknown read state {other:?}"))),
        };
        self.write_pipe.clear();
        for entry in state.get_list("write_pipe")? {
            let w = entry.as_blob("soc.ddr")?;
            w.expect("soc.ddr.write", 1)?;
            self.write_pipe.push_back((
                w.get_u64("done")?,
                MmReq::from_state(w.get("req")?, "soc.ddr")?,
            ));
        }
        self.refresh_at = state.get_u64("refresh_at")?;
        self.refresh_until = state.get_u64("refresh_until")?;
        self.last_read_end = state.get_opt_u64("last_read_end")?;
        self.beats_read = state.get_u64("beats_read")?;
        self.beats_written = state.get_u64("beats_written")?;
        self.refreshes = state.get_u64("refreshes")?;
        Ok(())
    }
}

impl Ddr {
    fn stream_beat(&mut self, cycle: Cycle) {
        if let ReadState::Streaming {
            addr,
            beat_bytes,
            remaining,
        } = self.read
        {
            if remaining == 0 {
                self.read = ReadState::Idle;
                return;
            }
            let v = self.read_u64(addr, beat_bytes);
            let last = remaining == 1;
            if self
                .port
                .try_respond(cycle, MmResp::data(v, beat_bytes, last))
                .is_ok()
            {
                self.beats_read += 1;
                self.last_read_end = Some(addr + beat_bytes as u64);
                self.read = if last {
                    ReadState::Idle
                } else {
                    ReadState::Streaming {
                        addr: addr + beat_bytes as u64,
                        beat_bytes,
                        remaining: remaining - 1,
                    }
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::DDR_BASE;
    use rvcap_axi::mm::link;
    use rvcap_sim::{Freq, Simulator};

    fn rig(cfg: DdrConfig) -> (Simulator, rvcap_axi::MasterPort, DdrHandle) {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("ddr", 8);
        let (ddr, handle) = Ddr::new("ddr", s, DDR_BASE, cfg);
        sim.register(Box::new(ddr));
        (sim, m, handle)
    }

    fn small_cfg() -> DdrConfig {
        DdrConfig {
            size: 1 << 20,
            ..DdrConfig::default()
        }
    }

    #[test]
    fn backdoor_and_bus_agree() {
        let (mut sim, m, h) = rig(small_cfg());
        h.write_bytes(DDR_BASE + 64, &[1, 2, 3, 4, 5, 6, 7, 8]);
        m.try_issue(0, MmReq::read(DDR_BASE + 64, 8)).unwrap();
        let mut got = None;
        sim.run_until(200, || {
            got = m.resp.force_pop();
            got.is_some()
        })
        .unwrap();
        assert_eq!(got.unwrap().data, 0x0807_0605_0403_0201);
    }

    #[test]
    fn write_then_read() {
        let (mut sim, m, h) = rig(small_cfg());
        m.try_issue(0, MmReq::write(DDR_BASE, 0xDEAD_BEEF, 4))
            .unwrap();
        sim.run_until(200, || m.resp.force_pop().is_some()).unwrap();
        assert_eq!(h.read_bytes(DDR_BASE, 4), vec![0xEF, 0xBE, 0xAD, 0xDE]);
    }

    #[test]
    fn burst_streams_one_beat_per_cycle() {
        let (mut sim, m, h) = rig(small_cfg());
        let data: Vec<u8> = (0..128).collect();
        h.write_bytes(DDR_BASE, &data);
        m.try_issue(0, MmReq::read_burst(DDR_BASE, 16, 8)).unwrap();
        let mut beats = Vec::new();
        let mut first_at = None;
        let mut last_at = None;
        for _ in 0..200 {
            sim.step();
            while let Some(r) = m.resp.force_pop() {
                if first_at.is_none() {
                    first_at = Some(sim.now());
                }
                last_at = Some(sim.now());
                beats.push(r);
            }
            if beats.len() == 16 {
                break;
            }
        }
        assert_eq!(beats.len(), 16);
        assert!(beats[15].last);
        // 16 beats delivered over ~15 cycles (1/cycle).
        let span = last_at.unwrap() - first_at.unwrap();
        assert!(span <= 17, "streaming span {span}");
        // First beat arrives after the configured latency.
        assert!(first_at.unwrap() >= small_cfg().read_latency);
    }

    #[test]
    fn reads_and_writes_proceed_concurrently() {
        let (mut sim, m, h) = rig(small_cfg());
        h.write_bytes(DDR_BASE, &vec![7u8; 256]);
        m.try_issue(0, MmReq::read_burst(DDR_BASE, 16, 8)).unwrap();
        sim.step();
        m.try_issue(1, MmReq::write(DDR_BASE + 1024, 1, 8)).unwrap();
        let mut read_beats = 0;
        let mut write_acked = false;
        for _ in 0..200 {
            sim.step();
            while let Some(r) = m.resp.force_pop() {
                if r.bytes == 0 {
                    write_acked = true;
                } else {
                    read_beats += 1;
                }
            }
            if read_beats == 16 && write_acked {
                break;
            }
        }
        assert_eq!(read_beats, 16);
        assert!(write_acked);
    }

    #[test]
    fn refresh_fires_periodically() {
        let cfg = small_cfg();
        let (mut sim, _m, _h) = rig(cfg);
        sim.step_n(cfg.refresh_interval * 5 + 10);
        // Can't reach the component; verified indirectly by the
        // sustained-throughput test below instead. This test pins the
        // configuration default.
        assert_eq!(cfg.refresh_interval, 780);
        assert_eq!(cfg.refresh_penalty, 4);
    }

    #[test]
    fn out_of_bounds_access_errors() {
        let (mut sim, m, _h) = rig(small_cfg());
        m.try_issue(0, MmReq::read(DDR_BASE + (1 << 20), 8))
            .unwrap();
        let mut got = None;
        sim.run_until(200, || {
            got = m.resp.force_pop();
            got.is_some()
        })
        .unwrap();
        assert!(got.unwrap().error);
    }

    #[test]
    fn sustained_burst_bandwidth_near_8_bytes_per_cycle() {
        let (mut sim, m, h) = rig(small_cfg());
        h.write_bytes(DDR_BASE, &vec![1u8; 64 * 1024]);
        let bursts = 256u64; // 256 × 16 × 8 = 32 KiB
        let mut issued = 0u64;
        let mut beats = 0u64;
        let start = sim.now();
        while beats < bursts * 16 {
            let now = sim.now();
            if issued < bursts
                && m.try_issue(now, MmReq::read_burst(DDR_BASE + issued * 128, 16, 8))
                    .is_ok()
            {
                issued += 1;
            }
            while m.resp.force_pop().is_some() {
                beats += 1;
            }
            sim.step();
            assert!(sim.now() - start < 100_000, "stalled");
        }
        let cycles = sim.now() - start;
        let bytes = bursts * 128;
        let bpc = bytes as f64 / cycles as f64;
        // ≥ 7.5 B/cycle: streaming with only refresh + initial latency
        // overhead.
        assert!(bpc > 7.5, "only {bpc:.2} B/cycle over {cycles} cycles");
    }
}
