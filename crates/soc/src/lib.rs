//! # rvcap-soc — the RISC-V SoC substrate
//!
//! The pieces of the paper's Fig. 1 that are not the RV-CAP
//! contribution itself: the Ariane-class CPU's bus behaviour, DDR
//! memory with a realistic controller, the CLINT (whose 5 MHz timer
//! takes every measurement in the paper), the PLIC (which receives the
//! DMA's completion interrupt in non-blocking mode), the SPI master
//! wired to the SD card, and a UART for the drivers' terminal
//! messages.
//!
//! ## The CPU model
//!
//! Drivers in this reproduction are ordinary Rust functions — ports of
//! the paper's C listings — executed *co-routine style* against the
//! simulation: every MMIO access goes through [`cpu::SocCore`], which
//! advances the simulated clock until the bus transaction completes
//! and charges the pipeline cost of a non-speculative access. Ariane
//! "is not allowed to start speculative memory access to the
//! non-cacheable memory address area" (§IV-B), so this blocking model
//! is the architecturally correct one for driver I/O — and it is the
//! effect behind the paper's HWICAP throughput numbers.
//!
//! For instruction-level fidelity (the loop-unrolling study), the
//! `rvcap-rv64` interpreter can be bridged to the same bus via
//! [`cpu::InterpreterBus`].

pub mod clint;
pub mod cpu;
pub mod ddr;
pub mod map;
pub mod plic;
pub mod spi;
pub mod uart;

pub use clint::{Clint, ClintHandle};
pub use cpu::{CpuTiming, InterpreterBus, SocCore};
pub use ddr::{Ddr, DdrConfig, DdrHandle};
pub use plic::{Plic, PlicHandle};
pub use spi::{Spi, SpiHandle};
pub use uart::{Uart, UartHandle};
