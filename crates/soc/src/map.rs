//! The SoC memory map.
//!
//! Follows the Ariane/CVA6 platform conventions (CLINT at 0x0200_0000,
//! PLIC at 0x0C00_0000, DRAM at 0x8000_0000); the RV-CAP controller's
//! register windows sit in the non-cacheable peripheral space below
//! DRAM, which is what forces the CPU's blocking access behaviour.

/// Boot ROM base (application binaries live here, §III-A).
pub const BOOT_ROM_BASE: u64 = 0x0001_0000;
/// Boot ROM size.
pub const BOOT_ROM_SIZE: u64 = 0x0002_0000; // 128 KiB

/// CLINT base.
pub const CLINT_BASE: u64 = 0x0200_0000;
/// CLINT window size.
pub const CLINT_SIZE: u64 = 0x0001_0000;

rvcap_axi::register_map! {
    /// The CLINT register window (hart-0 subset).
    pub static CLINT_MAP: "clint", size 0x10000 {
        /// `mtimecmp` (hart 0) offset.
        CLINT_MTIMECMP @ 0x4000: 8 RW reset 0xFFFF_FFFF_FFFF_FFFF, "hart-0 timer compare";
        /// `mtime` register offset within the CLINT.
        CLINT_MTIME @ 0xBFF8: 8 RW reset 0x0, "machine timer (5 MHz in the paper)";
    }
}

/// PLIC base.
pub const PLIC_BASE: u64 = 0x0C00_0000;
/// PLIC window size.
pub const PLIC_SIZE: u64 = 0x0040_0000;

rvcap_axi::register_map! {
    /// The PLIC register window (hart-0, sources 1..=31 subset).
    pub static PLIC_MAP: "plic", size 0x400000 {
        /// Pending bitmap (word 0 covers sources 0..32).
        PLIC_PENDING @ 0x1000: 4 RO reset 0x0, "pending bitmap, sources 0..32";
        /// Enable bitmap for hart 0.
        PLIC_ENABLE @ 0x2000: 4 RW reset 0x0, "hart-0 enable bitmap";
        /// Claim/complete register for hart 0.
        PLIC_CLAIM @ 0x200004: 4 RW reset 0x0, "read claims the lowest pending id; write completes";
    }
}

/// UART base.
pub const UART_BASE: u64 = 0x1000_0000;
/// UART window size.
pub const UART_SIZE: u64 = 0x1000;

rvcap_axi::register_map! {
    /// The UART register window (TX-only terminal).
    pub static UART_MAP: "uart", size 0x1000 {
        /// TX data register.
        UART_TX @ 0x0: 4 WO reset 0x0, "TX data; low byte is transmitted";
        /// Status register (bit 0: TX ready).
        UART_STATUS @ 0x4: 4 RO reset 0x1, "bit 0: TX ready (always 1 here)";
    }
}

/// SPI controller base.
pub const SPI_BASE: u64 = 0x2000_0000;
/// SPI window size.
pub const SPI_SIZE: u64 = 0x1000;

rvcap_axi::register_map! {
    /// The SPI controller register window (SD-card link, §III-A).
    pub static SPI_MAP: "spi", size 0x1000 {
        /// TX/RX data register: write starts an 8-bit exchange, read
        /// returns the last received byte.
        SPI_TXRX @ 0x0: 4 RW reset 0x0, "write starts an 8-bit exchange; read returns RX";
        /// Status register (bit 0: busy).
        SPI_STATUS @ 0x4: 4 RO reset 0x0, "bit 0: shifter busy";
        /// Chip-select register (bit 0: CS asserted/low).
        SPI_CS @ 0x8: 4 RW reset 0x0, "bit 0: CS asserted (low)";
        /// Clock divider register (SPI bit time = `div` core cycles).
        SPI_CLKDIV @ 0xC: 4 RW reset 0x1, "SPI bit time in core cycles";
    }
}

/// AXI_HWICAP base (baseline controller, §III-C).
pub const HWICAP_BASE: u64 = 0x4000_0000;
/// HWICAP window size.
pub const HWICAP_SIZE: u64 = 0x1000;

/// RV-CAP DMA register window (Xilinx AXI DMA layout).
pub const DMA_BASE: u64 = 0x4100_0000;
/// DMA window size.
pub const DMA_SIZE: u64 = 0x1000;

/// RP control interface (decouple / status), §III-B ③.
pub const RP_CTRL_BASE: u64 = 0x4101_0000;
/// RP control window size.
pub const RP_CTRL_SIZE: u64 = 0x1000;

/// AXI-Stream switch control (reconfiguration vs acceleration mode).
pub const SWITCH_BASE: u64 = 0x4102_0000;
/// Switch window size.
pub const SWITCH_SIZE: u64 = 0x1000;

/// DDR base.
pub const DDR_BASE: u64 = 0x8000_0000;
/// Default simulated DDR size (enough for several partial bitstreams
/// and two 512×512 frame buffers; configurable in [`crate::ddr`]).
pub const DDR_DEFAULT_SIZE: u64 = 64 * 1024 * 1024;

/// PLIC interrupt source id of the DMA MM2S (read channel) IOC
/// interrupt.
pub const IRQ_DMA_MM2S: u32 = 1;
/// PLIC source id of the DMA S2MM (write channel) IOC interrupt.
pub const IRQ_DMA_S2MM: u32 = 2;

/// Is `addr` in cacheable DRAM (as opposed to peripheral space)?
pub fn is_cacheable(addr: u64) -> bool {
    addr >= DDR_BASE || (BOOT_ROM_BASE..BOOT_ROM_BASE + BOOT_ROM_SIZE).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peripheral_space_is_noncacheable() {
        assert!(!is_cacheable(HWICAP_BASE));
        assert!(!is_cacheable(DMA_BASE));
        assert!(!is_cacheable(CLINT_BASE + CLINT_MTIME));
        assert!(is_cacheable(DDR_BASE));
        assert!(is_cacheable(DDR_BASE + 0x100_0000));
        assert!(is_cacheable(BOOT_ROM_BASE));
    }

    #[test]
    fn windows_do_not_overlap() {
        let windows = [
            (BOOT_ROM_BASE, BOOT_ROM_SIZE),
            (CLINT_BASE, CLINT_SIZE),
            (PLIC_BASE, PLIC_SIZE),
            (UART_BASE, UART_SIZE),
            (SPI_BASE, SPI_SIZE),
            (HWICAP_BASE, HWICAP_SIZE),
            (DMA_BASE, DMA_SIZE),
            (RP_CTRL_BASE, RP_CTRL_SIZE),
            (SWITCH_BASE, SWITCH_SIZE),
            (DDR_BASE, DDR_DEFAULT_SIZE),
        ];
        for (i, &(a, asz)) in windows.iter().enumerate() {
            for &(b, bsz) in windows.iter().skip(i + 1) {
                assert!(
                    a + asz <= b || b + bsz <= a,
                    "windows {a:#x}/{b:#x} overlap"
                );
            }
        }
    }
}
