//! The PLIC: platform-level interrupt controller.
//!
//! "The DMA controller interrupts are directly connected to the
//! processor-level interrupt controller (PLIC) to support non-blocking
//! mode during data transfer and free up the processor for other
//! tasks" (§III-B). The model implements the subset drivers use:
//! level-sensitive sources, an enable mask, a pending bitmap, and the
//! claim/complete handshake.

use std::cell::RefCell;
use std::rc::Rc;

use rvcap_axi::mm::{MmResp, SlavePort};
use rvcap_axi::regmap::{Decoded, RegisterFile};
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::state::{StateBlob, StateError};
use rvcap_sim::{MmioAudit, Signal};

use crate::map::{PLIC_ENABLE, PLIC_MAP, PLIC_PENDING};

#[derive(Debug, Default)]
struct Shared {
    pending: u32,
    enabled: u32,
    /// Sources claimed but not completed (gated from re-pending).
    in_service: u32,
    claims: u64,
}

/// Zero-time observer of PLIC state.
#[derive(Debug, Clone)]
pub struct PlicHandle {
    shared: Rc<RefCell<Shared>>,
}

impl PlicHandle {
    /// Is source `id` pending (enabled and raised)?
    pub fn is_pending(&self, id: u32) -> bool {
        self.shared.borrow().pending & (1 << id) != 0
    }

    /// Any enabled source pending?
    pub fn any_pending(&self) -> bool {
        self.shared.borrow().pending != 0
    }

    /// Total successful claims.
    pub fn claims(&self) -> u64 {
        self.shared.borrow().claims
    }
}

/// The PLIC component. Source 0 is reserved (as in the spec); sources
/// are 1..=31 here.
pub struct Plic {
    name: String,
    port: SlavePort,
    /// Typed decode of the register window.
    regs: RegisterFile,
    /// Level signals indexed by source id.
    sources: Vec<(u32, Signal<bool>)>,
    shared: Rc<RefCell<Shared>>,
}

impl Plic {
    /// Create a PLIC with the given (id, level-signal) sources.
    pub fn new(
        name: impl Into<String>,
        port: SlavePort,
        _base: u64,
        sources: Vec<(u32, Signal<bool>)>,
    ) -> (Self, PlicHandle) {
        for &(id, _) in &sources {
            assert!((1..32).contains(&id), "source id {id} out of range");
        }
        let shared = Rc::new(RefCell::new(Shared::default()));
        let handle = PlicHandle {
            shared: shared.clone(),
        };
        (
            Plic {
                name: name.into(),
                port,
                regs: RegisterFile::new(&PLIC_MAP),
                sources,
                shared,
            },
            handle,
        )
    }
}

impl Component for Plic {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        let cycle = ctx.cycle;
        // Sample level sources into the pending bitmap.
        {
            let mut sh = self.shared.borrow_mut();
            for (id, sig) in &self.sources {
                let bit = 1u32 << id;
                if sig.get() && sh.enabled & bit != 0 && sh.in_service & bit == 0 {
                    if sh.pending & bit == 0 {
                        ctx.tracer
                            .info(cycle, &self.name, || format!("irq {id} pending"));
                    }
                    sh.pending |= bit;
                }
            }
        }
        if let Some(req) = self.port.try_take(cycle) {
            let resp = match self.regs.decode(&req) {
                Decoded::Read { def, bytes } => {
                    let mut sh = self.shared.borrow_mut();
                    let v = match def.offset {
                        PLIC_PENDING => sh.pending as u64,
                        PLIC_ENABLE => sh.enabled as u64,
                        _ => {
                            // Claim: highest-priority (lowest id) pending.
                            let id = (1..32).find(|i| sh.pending & (1 << i) != 0);
                            match id {
                                Some(i) => {
                                    sh.pending &= !(1 << i);
                                    sh.in_service |= 1 << i;
                                    sh.claims += 1;
                                    i as u64
                                }
                                None => 0,
                            }
                        }
                    };
                    MmResp::data(v, bytes, true)
                }
                Decoded::Write { def, value, .. } => {
                    let mut sh = self.shared.borrow_mut();
                    if def.offset == PLIC_ENABLE {
                        sh.enabled = value as u32;
                    } else {
                        // Complete: allow the source to pend again.
                        let bit = 1u32 << (value as u32 & 31);
                        sh.in_service &= !bit;
                    }
                    MmResp::write_ack()
                }
                Decoded::Reject => MmResp::err(),
            };
            let _ = self.port.try_respond(cycle, resp);
        }
    }

    fn next_activity(&self, now: rvcap_sim::Cycle) -> Option<rvcap_sim::Cycle> {
        if !self.port.req.is_empty() {
            return Some(now);
        }
        // A tick changes state only when some enabled, not-in-service,
        // not-yet-pending source line is high — the exact condition
        // under which the sampler sets a pending bit. A line held high
        // while latched pending (or in service, or disabled) is a
        // no-op, so it must not keep the system from fast-forwarding.
        let sh = self.shared.borrow();
        let newly_pending = self.sources.iter().any(|(id, sig)| {
            let bit = 1u32 << id;
            sig.get() && sh.enabled & bit != 0 && sh.in_service & bit == 0 && sh.pending & bit == 0
        });
        if newly_pending {
            Some(now)
        } else {
            Some(rvcap_sim::Cycle::MAX)
        }
    }

    fn wake_sources(&self, waker: &rvcap_sim::Waker) -> rvcap_sim::WakePolicy {
        // Level sources re-evaluate the hint on every signal edge (a
        // rising line may newly pend; enable/claim traffic arrives via
        // the bus request channel, which is also subscribed).
        self.port.req.subscribe_wake(waker.clone());
        for (_, sig) in &self.sources {
            sig.subscribe_wake(waker.clone());
        }
        rvcap_sim::WakePolicy::Wired
    }

    fn max_batch(&self, _now: rvcap_sim::Cycle) -> Option<rvcap_sim::Cycle> {
        // Deliberately no window: the PLIC is due only for one-shot
        // events (a bus access, a newly pending source line). An IRQ
        // edge raised by a fused member escapes the member set as a
        // signal wake, which ends the window on that exact cycle — the
        // PLIC then samples it with per-cycle timing.
        None
    }

    fn mmio_audit(&self) -> Option<MmioAudit> {
        Some(self.regs.audit())
    }

    fn save_state(&self) -> Option<StateBlob> {
        let sh = self.shared.borrow();
        let mut b = StateBlob::new("soc.plic", 1);
        b.put("port_req", self.port.req.save_state());
        b.put("regs", self.regs.save_state());
        b.put_u64("pending", sh.pending as u64);
        b.put_u64("enabled", sh.enabled as u64);
        b.put_u64("in_service", sh.in_service as u64);
        b.put_u64("claims", sh.claims);
        // Source line levels are owned (saved) by their drivers.
        Some(b)
    }

    fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("soc.plic", 1)?;
        self.port.req.restore_state(state.get("port_req")?)?;
        self.regs.restore_state(state.get("regs")?)?;
        let mut sh = self.shared.borrow_mut();
        sh.pending = state.get_u32("pending")?;
        sh.enabled = state.get_u32("enabled")?;
        sh.in_service = state.get_u32("in_service")?;
        sh.claims = state.get_u64("claims")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{PLIC_BASE, PLIC_CLAIM};
    use rvcap_axi::mm::{link, MmReq};
    use rvcap_sim::{Freq, Simulator};

    struct Rig {
        sim: Simulator,
        m: rvcap_axi::MasterPort,
        h: PlicHandle,
        line1: Signal<bool>,
        line2: Signal<bool>,
    }

    fn rig() -> Rig {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("plic", 2);
        let line1 = Signal::new(false);
        let line2 = Signal::new(false);
        let (plic, h) = Plic::new(
            "plic",
            s,
            PLIC_BASE,
            vec![(1, line1.clone()), (2, line2.clone())],
        );
        sim.register(Box::new(plic));
        Rig {
            sim,
            m,
            h,
            line1,
            line2,
        }
    }

    fn mmio_read(r: &mut Rig, addr: u64) -> u64 {
        r.m.try_issue(r.sim.now(), MmReq::read(addr, 4)).unwrap();
        let mut got = None;
        r.sim
            .run_until(100, || {
                got = r.m.resp.force_pop();
                got.is_some()
            })
            .unwrap();
        got.unwrap().data
    }

    fn mmio_write(r: &mut Rig, addr: u64, v: u64) {
        r.m.try_issue(r.sim.now(), MmReq::write(addr, v, 4))
            .unwrap();
        r.sim
            .run_until(100, || r.m.resp.force_pop().is_some())
            .unwrap();
    }

    #[test]
    fn disabled_source_never_pends() {
        let mut r = rig();
        r.line1.set(true);
        r.sim.step_n(10);
        assert!(!r.h.is_pending(1));
    }

    #[test]
    fn enabled_source_pends_and_claims() {
        let mut r = rig();
        mmio_write(&mut r, PLIC_BASE + PLIC_ENABLE, 0b110);
        r.line1.set(true); // not enabled (bit 1 is id 1? enabled=0b110 → ids 1,2)
        r.line2.set(true);
        r.sim.step_n(5);
        assert!(r.h.is_pending(1));
        assert!(r.h.is_pending(2));
        // Claim returns the lowest pending id.
        assert_eq!(mmio_read(&mut r, PLIC_BASE + PLIC_CLAIM), 1);
        assert!(!r.h.is_pending(1));
        assert_eq!(mmio_read(&mut r, PLIC_BASE + PLIC_CLAIM), 2);
        assert_eq!(mmio_read(&mut r, PLIC_BASE + PLIC_CLAIM), 0);
        assert_eq!(r.h.claims(), 2);
    }

    #[test]
    fn claimed_source_does_not_repend_until_complete() {
        let mut r = rig();
        mmio_write(&mut r, PLIC_BASE + PLIC_ENABLE, 0b10);
        r.line1.set(true);
        r.sim.step_n(5);
        assert_eq!(mmio_read(&mut r, PLIC_BASE + PLIC_CLAIM), 1);
        // Line still high, but in-service: no re-pend.
        r.sim.step_n(10);
        assert!(!r.h.is_pending(1));
        // Complete; still high → pends again (level semantics).
        mmio_write(&mut r, PLIC_BASE + PLIC_CLAIM, 1);
        r.sim.step_n(5);
        assert!(r.h.is_pending(1));
        // Drop the line and complete the second claim: quiet.
        assert_eq!(mmio_read(&mut r, PLIC_BASE + PLIC_CLAIM), 1);
        r.line1.set(false);
        mmio_write(&mut r, PLIC_BASE + PLIC_CLAIM, 1);
        r.sim.step_n(5);
        assert!(!r.h.any_pending());
    }

    #[test]
    fn pending_bitmap_readable() {
        let mut r = rig();
        mmio_write(&mut r, PLIC_BASE + PLIC_ENABLE, 0b110);
        r.line2.set(true);
        r.sim.step_n(5);
        assert_eq!(mmio_read(&mut r, PLIC_BASE + PLIC_PENDING), 0b100);
    }
}
