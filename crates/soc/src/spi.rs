//! The SPI master peripheral, wired to the SD card.
//!
//! "To read and write logical blocks from the SD card, the
//! serial-parallel interface (SPI) peripheral is used to communicate
//! between the AXI-4 bus and the external SD card" (§III-A). The
//! peripheral shifts one byte per `8 × clkdiv` fabric cycles — SPI
//! link time is what makes `init_RModules` (SD → DDR staging) slow
//! compared to the reconfiguration itself, exactly as on the board.

use rvcap_axi::mm::{MmOp, MmResp, SlavePort};
use rvcap_axi::regmap::{Decoded, RegisterFile};
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::state::{StateBlob, StateError};
use rvcap_sim::{Cycle, MmioAudit};
use rvcap_storage::{BlockDevice, SdCard};

use crate::map::{SPI_CS, SPI_MAP, SPI_STATUS, SPI_TXRX};

use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct Shared {
    transfers: u64,
}

/// Observer for SPI traffic statistics.
#[derive(Debug, Clone)]
pub struct SpiHandle {
    shared: Rc<RefCell<Shared>>,
}

impl SpiHandle {
    /// Byte transfers performed.
    pub fn transfers(&self) -> u64 {
        self.shared.borrow().transfers
    }
}

/// The SPI master with an attached SD card.
pub struct Spi<D: BlockDevice> {
    name: String,
    port: SlavePort,
    /// Typed decode of the register window.
    regs: RegisterFile,
    card: SdCard<D>,
    /// Fabric cycles per SPI bit (clock divider).
    clkdiv: u32,
    cs_asserted: bool,
    /// In-flight byte: (completes_at, miso byte).
    busy_until: Option<(Cycle, u8)>,
    rx: u8,
    shared: Rc<RefCell<Shared>>,
}

impl<D: BlockDevice> Spi<D> {
    /// Create the peripheral. `clkdiv` of 4 gives a 25 MHz SPI clock
    /// at the 100 MHz fabric — a typical SD full-speed setting.
    pub fn new(
        name: impl Into<String>,
        port: SlavePort,
        _base: u64,
        card: SdCard<D>,
        clkdiv: u32,
    ) -> (Self, SpiHandle) {
        assert!(clkdiv >= 1);
        let shared = Rc::new(RefCell::new(Shared::default()));
        let handle = SpiHandle {
            shared: shared.clone(),
        };
        (
            Spi {
                name: name.into(),
                port,
                regs: RegisterFile::new(&SPI_MAP),
                card,
                clkdiv,
                cs_asserted: false,
                busy_until: None,
                rx: 0xFF,
                shared,
            },
            handle,
        )
    }

    /// Access the attached card (for test setup/inspection).
    pub fn card(&self) -> &SdCard<D> {
        &self.card
    }
}

impl<D: BlockDevice> Component for Spi<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        let cycle = ctx.cycle;
        if let Some((done, miso)) = self.busy_until {
            if done <= cycle {
                self.rx = miso;
                self.busy_until = None;
            }
        }
        // Service one register access per cycle; TXRX writes are
        // refused (retried by the bus) while a transfer is in flight.
        if let Some(req) = self.port.req.peek() {
            let off = self.regs.offset_of(req.addr);
            let busy = self.busy_until.is_some();
            if off == SPI_TXRX && matches!(req.op, MmOp::Write { .. }) && busy {
                return; // back-pressure until the shifter is free
            }
            let req = self.port.try_take(cycle).expect("peeked");
            let resp = match self.regs.decode(&req) {
                Decoded::Write { def, value, .. } => {
                    match def.offset {
                        SPI_TXRX => {
                            // Full-duplex exchange: the card computes
                            // MISO now; it becomes readable when the
                            // shift completes.
                            let miso = if self.cs_asserted {
                                self.card.exchange(value as u8)
                            } else {
                                0xFF // nothing selected
                            };
                            let bit_time = self.clkdiv as Cycle;
                            self.busy_until = Some((cycle + 8 * bit_time, miso));
                            self.shared.borrow_mut().transfers += 1;
                        }
                        SPI_CS => self.cs_asserted = value & 1 != 0,
                        _ => self.clkdiv = (value as u32).max(1),
                    }
                    MmResp::write_ack()
                }
                Decoded::Read { def, bytes } => {
                    let v = match def.offset {
                        SPI_TXRX => self.rx as u64,
                        SPI_STATUS => self.busy_until.is_some() as u64,
                        SPI_CS => self.cs_asserted as u64,
                        _ => self.clkdiv as u64,
                    };
                    MmResp::data(v, bytes, true)
                }
                Decoded::Reject => MmResp::err(),
            };
            let _ = self.port.try_respond(cycle, resp);
        }
    }

    fn busy(&self) -> bool {
        self.busy_until.is_some()
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // A queued register access is serviced (or back-pressured into
        // a retry) this cycle — status reads work while the shifter is
        // busy, so any pending request means activity now.
        if !self.port.req.is_empty() {
            return Some(now);
        }
        match self.busy_until {
            Some((done, _)) => Some(done.max(now)),
            None => Some(Cycle::MAX),
        }
    }

    fn wake_sources(&self, waker: &rvcap_sim::Waker) -> rvcap_sim::WakePolicy {
        // Register traffic arrives on the request channel; the shift
        // completion is a time-based deadline the hint already names.
        self.port.req.subscribe_wake(waker.clone());
        rvcap_sim::WakePolicy::Wired
    }

    fn mmio_audit(&self) -> Option<MmioAudit> {
        Some(self.regs.audit())
    }

    fn save_state(&self) -> Option<StateBlob> {
        let mut b = StateBlob::new("soc.spi", 1);
        b.put("port_req", self.port.req.save_state());
        b.put("regs", self.regs.save_state());
        b.put_blob("card", self.card.save_state()?);
        b.put_u64("clkdiv", self.clkdiv as u64);
        b.put_bool("cs_asserted", self.cs_asserted);
        let (busy, miso) = match self.busy_until {
            Some((done, miso)) => (Some(done), miso as u64),
            None => (None, 0),
        };
        b.put_opt_u64("busy_until", busy);
        b.put_u64("busy_miso", miso);
        b.put_u64("rx", self.rx as u64);
        b.put_u64("transfers", self.shared.borrow().transfers);
        Some(b)
    }

    fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("soc.spi", 1)?;
        self.port.req.restore_state(state.get("port_req")?)?;
        self.regs.restore_state(state.get("regs")?)?;
        self.card.restore_state(state.get_blob("card")?)?;
        self.clkdiv = state.get_u32("clkdiv")?.max(1);
        self.cs_asserted = state.get_bool("cs_asserted")?;
        let miso = state.get_u64("busy_miso")?;
        let miso = u8::try_from(miso)
            .map_err(|_| state.structure_error(format!("busy_miso {miso} exceeds u8")))?;
        self.busy_until = state.get_opt_u64("busy_until")?.map(|done| (done, miso));
        let rx = state.get_u64("rx")?;
        self.rx =
            u8::try_from(rx).map_err(|_| state.structure_error(format!("rx {rx} exceeds u8")))?;
        self.shared.borrow_mut().transfers = state.get_u64("transfers")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::SPI_BASE;
    use rvcap_axi::mm::{link, MmReq};
    use rvcap_sim::{Freq, Simulator};
    use rvcap_storage::MemBlockDevice;

    struct Rig {
        sim: Simulator,
        m: rvcap_axi::MasterPort,
    }

    fn rig(clkdiv: u32) -> Rig {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("spi", 2);
        let card = SdCard::new(MemBlockDevice::with_mib(1));
        let (spi, _h) = Spi::new("spi", s, SPI_BASE, card, clkdiv);
        sim.register(Box::new(spi));
        Rig { sim, m }
    }

    fn wr(r: &mut Rig, addr: u64, v: u64) {
        loop {
            if r.m.try_issue(r.sim.now(), MmReq::write(addr, v, 1)).is_ok() {
                break;
            }
            r.sim.step();
        }
        r.sim
            .run_until(10_000, || r.m.resp.force_pop().is_some())
            .unwrap();
    }

    fn rd(r: &mut Rig, addr: u64) -> u64 {
        r.m.try_issue(r.sim.now(), MmReq::read(addr, 1)).unwrap();
        let mut got = None;
        r.sim
            .run_until(10_000, || {
                got = r.m.resp.force_pop();
                got.is_some()
            })
            .unwrap();
        got.unwrap().data
    }

    /// Exchange one byte through the peripheral, waiting for the
    /// shifter.
    fn xfer(r: &mut Rig, mosi: u8) -> u8 {
        wr(r, SPI_BASE + SPI_TXRX, mosi as u64);
        while rd(r, SPI_BASE + SPI_STATUS) & 1 != 0 {}
        rd(r, SPI_BASE + SPI_TXRX) as u8
    }

    #[test]
    fn deselected_card_reads_ff() {
        let mut r = rig(1);
        assert_eq!(xfer(&mut r, 0x40), 0xFF);
    }

    #[test]
    fn byte_time_scales_with_clkdiv() {
        // Time a single exchange at two dividers.
        let time = |div: u32| {
            let mut r = rig(div);
            wr(&mut r, SPI_BASE + SPI_CS, 1);
            let t0 = r.sim.now();
            xfer(&mut r, 0xFF);
            r.sim.now() - t0
        };
        let fast = time(1);
        let slow = time(8);
        assert!(slow > fast + 40, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn sd_init_through_peripheral() {
        let mut r = rig(1);
        wr(&mut r, SPI_BASE + SPI_CS, 1);
        // Run the standard init sequence over MMIO.
        let ok = rvcap_storage::sd::host::init(|b| xfer(&mut r, b));
        assert!(ok, "SD init over the SPI peripheral must succeed");
    }

    #[test]
    fn block_read_through_peripheral() {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("spi", 2);
        let mut dev = MemBlockDevice::with_mib(1);
        let mut block = [0u8; 512];
        block[0] = 0x42;
        block[511] = 0x24;
        use rvcap_storage::BlockDevice as _;
        dev.write_block(3, &block);
        let card = SdCard::new(dev);
        let (spi, h) = Spi::new("spi", s, SPI_BASE, card, 1);
        sim.register(Box::new(spi));
        let mut r = Rig { sim, m };
        wr(&mut r, SPI_BASE + SPI_CS, 1);
        assert!(rvcap_storage::sd::host::init(|b| xfer(&mut r, b)));
        let mut out = [0u8; 512];
        assert!(rvcap_storage::sd::host::read_block(
            |b| xfer(&mut r, b),
            3,
            &mut out
        ));
        assert_eq!(out, block);
        assert!(h.transfers() > 512);
    }
}
