//! A minimal UART: the drivers' terminal.
//!
//! "A terminal message informs that the reconfiguration was
//! successful" (§III-C). TX only; bytes land in a shared log the
//! examples print and the tests assert on.

use std::cell::RefCell;
use std::rc::Rc;

use rvcap_axi::mm::{MmResp, SlavePort};
use rvcap_axi::regmap::{Decoded, RegisterFile};
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::state::{StateBlob, StateError, StateValue};
use rvcap_sim::MmioAudit;
use std::sync::Arc;

use crate::map::{UART_MAP, UART_STATUS, UART_TX};

/// Shared view of everything the UART transmitted.
#[derive(Debug, Clone, Default)]
pub struct UartHandle {
    log: Rc<RefCell<Vec<u8>>>,
}

impl UartHandle {
    /// The transmitted bytes as a lossy string.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.log.borrow()).into_owned()
    }

    /// Number of bytes transmitted.
    pub fn len(&self) -> usize {
        self.log.borrow().len()
    }

    /// True if nothing was transmitted.
    pub fn is_empty(&self) -> bool {
        self.log.borrow().is_empty()
    }
}

/// The UART component.
pub struct Uart {
    name: String,
    port: SlavePort,
    /// Typed decode of the register window.
    regs: RegisterFile,
    handle: UartHandle,
}

impl Uart {
    /// Create a UART; the window base is resolved through the
    /// power-of-two [`UART_MAP`] mask, so `_base` only documents
    /// placement.
    pub fn new(name: impl Into<String>, port: SlavePort, _base: u64) -> (Self, UartHandle) {
        let handle = UartHandle::default();
        (
            Uart {
                name: name.into(),
                port,
                regs: RegisterFile::new(&UART_MAP),
                handle: handle.clone(),
            },
            handle,
        )
    }
}

impl Component for Uart {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if let Some(req) = self.port.try_take(ctx.cycle) {
            let resp = match self.regs.decode(&req) {
                Decoded::Write { def, value, .. } => {
                    if def.offset == UART_TX {
                        self.handle.log.borrow_mut().push(value as u8);
                    }
                    MmResp::write_ack()
                }
                Decoded::Read { def, bytes } => {
                    let v = match def.offset {
                        UART_STATUS => 1,
                        _ => 0,
                    };
                    MmResp::data(v, bytes, true)
                }
                Decoded::Reject => MmResp::err(),
            };
            let _ = self.port.try_respond(ctx.cycle, resp);
        }
    }

    fn next_activity(&self, now: rvcap_sim::Cycle) -> Option<rvcap_sim::Cycle> {
        if self.port.req.is_empty() {
            Some(rvcap_sim::Cycle::MAX)
        } else {
            Some(now)
        }
    }

    fn wake_sources(&self, waker: &rvcap_sim::Waker) -> rvcap_sim::WakePolicy {
        self.port.req.subscribe_wake(waker.clone());
        rvcap_sim::WakePolicy::Wired
    }

    fn mmio_audit(&self) -> Option<MmioAudit> {
        Some(self.regs.audit())
    }

    fn save_state(&self) -> Option<StateBlob> {
        let mut b = StateBlob::new("soc.uart", 1);
        b.put("port_req", self.port.req.save_state());
        b.put("regs", self.regs.save_state());
        b.put(
            "log",
            StateValue::Bytes(Arc::new(self.handle.log.borrow().clone())),
        );
        Some(b)
    }

    fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("soc.uart", 1)?;
        self.port.req.restore_state(state.get("port_req")?)?;
        self.regs.restore_state(state.get("regs")?)?;
        *self.handle.log.borrow_mut() = state.get_bytes("log")?.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::UART_BASE;
    use rvcap_axi::mm::{link, MmReq};
    use rvcap_sim::{Freq, Simulator};

    #[test]
    fn transmits_bytes_in_order() {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("uart", 2);
        let (uart, h) = Uart::new("uart", s, UART_BASE);
        sim.register(Box::new(uart));
        for (i, b) in b"ok\n".iter().enumerate() {
            m.try_issue(sim.now(), MmReq::write(UART_BASE + UART_TX, *b as u64, 1))
                .unwrap();
            sim.run_until(100, || m.resp.force_pop().is_some()).unwrap();
            assert_eq!(h.len(), i + 1);
        }
        assert_eq!(h.text(), "ok\n");
    }

    #[test]
    fn status_reads_ready() {
        let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
        let (m, s) = link("uart", 2);
        let (uart, _h) = Uart::new("uart", s, UART_BASE);
        sim.register(Box::new(uart));
        m.try_issue(0, MmReq::read(UART_BASE + UART_STATUS, 4))
            .unwrap();
        let mut got = None;
        sim.run_until(100, || {
            got = m.resp.force_pop();
            got.is_some()
        })
        .unwrap();
        assert_eq!(got.unwrap().data, 1);
    }
}
