//! CLINT timing audit under stream fusion: a timer interrupt whose
//! divider edge lands inside a batch window must fire on its exact
//! cycle under every scheduler configuration.
//!
//! The fused scheduler negotiates multi-cycle windows over the due
//! components; the CLINT never joins one (`Clint::max_batch` is
//! `None`) and instead publishes its next `timer_irq` edge through
//! `next_activity`, which the kernel's deadline heap turns into a hard
//! cap on every negotiated window. These tests pin that contract with
//! a stream busy across the edge: the interrupt must rise on the
//! mathematically exact divider-edge cycle, not a window boundary.

use std::cell::Cell;
use std::rc::Rc;

use rvcap_axi::mm::{link, MmReq};
use rvcap_sim::component::{Component, TickCtx};
use rvcap_sim::{Cycle, Fifo, Freq, Scheduler, Signal, Simulator, WakePolicy, Waker};
use rvcap_soc::map::{CLINT_BASE, CLINT_MTIMECMP};
use rvcap_soc::Clint;

/// The five kernel configurations the host-perf harness measures.
const MODES: [&str; 5] = ["naive", "scan", "active_set", "active_set_batched", "fused"];

fn apply_mode(sim: &mut Simulator, mode: &str) {
    match mode {
        "naive" => sim.set_scheduler(Scheduler::Naive),
        "scan" => sim.set_scheduler(Scheduler::Scan),
        "active_set" => {
            sim.set_scheduler(Scheduler::ActiveSet);
            sim.set_batching(false);
            sim.set_fusion(false);
        }
        "active_set_batched" => {
            sim.set_scheduler(Scheduler::ActiveSet);
            sim.set_batching(true);
            sim.set_fusion(false);
        }
        "fused" => {
            sim.set_scheduler(Scheduler::ActiveSet);
            sim.set_batching(true);
            sim.set_fusion(true);
        }
        _ => unreachable!("unknown mode {mode}"),
    }
}

/// Pushes one item per cycle until the source runs dry — the DMA side
/// of a stream chain, boiled down to the scheduling contract.
struct Producer {
    out: Fifo<u32>,
    remaining: u32,
}

impl Component for Producer {
    fn name(&self) -> &str {
        "producer"
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if self.remaining > 0 && self.out.try_push(ctx.cycle, self.remaining).is_ok() {
            self.remaining -= 1;
        }
    }

    fn busy(&self) -> bool {
        self.remaining > 0
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.remaining > 0 {
            Some(now)
        } else {
            Some(Cycle::MAX)
        }
    }

    fn wake_sources(&self, _waker: &Waker) -> WakePolicy {
        // No external inputs: due-ness depends only on `remaining`.
        WakePolicy::Wired
    }

    fn tick_batch(&mut self, ctx: &mut TickCtx<'_>, max_cycles: Cycle) -> Cycle {
        // One push per cycle with consecutive stamps — bulk-beat
        // execution of the per-cycle loop.
        for i in 0..max_cycles {
            if self.remaining == 0 || self.out.try_push(ctx.cycle + i, self.remaining).is_err() {
                return i.max(1);
            }
            self.remaining -= 1;
        }
        max_cycles
    }

    fn batch_capable(&self) -> bool {
        true
    }

    fn max_batch(&self, _now: Cycle) -> Option<Cycle> {
        // Due every cycle while items remain: a full channel only turns
        // pushes into retries, which is still due.
        (self.remaining > 0).then_some(self.remaining as Cycle)
    }
}

/// Pops one item per cycle while any are queued.
struct Consumer {
    input: Fifo<u32>,
    received: Rc<Cell<u64>>,
}

impl Component for Consumer {
    fn name(&self) -> &str {
        "consumer"
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if self.input.try_pop(ctx.cycle).is_some() {
            self.received.set(self.received.get() + 1);
        }
    }

    fn busy(&self) -> bool {
        !self.input.is_empty()
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.input.is_empty() {
            Some(Cycle::MAX)
        } else {
            Some(now)
        }
    }

    fn wake_sources(&self, waker: &Waker) -> WakePolicy {
        self.input.subscribe_wake(waker.clone());
        WakePolicy::Wired
    }

    fn max_batch(&self, _now: Cycle) -> Option<Cycle> {
        // Sole consumer: occupancy drains at exactly one pop per
        // cycle, so it sustains due-ness that many cycles no matter
        // what arrives.
        let o = self.input.len() as Cycle;
        (o > 0).then_some(o)
    }
}

/// Records the exact cycle `timer_irq` first reads high.
struct IrqProbe {
    irq: Signal<bool>,
    rose_at: Rc<Cell<Option<Cycle>>>,
}

impl Component for IrqProbe {
    fn name(&self) -> &str {
        "irq_probe"
    }

    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        if self.irq.get() && self.rose_at.get().is_none() {
            self.rose_at.set(Some(ctx.cycle));
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.irq.get() && self.rose_at.get().is_none() {
            Some(now)
        } else {
            Some(Cycle::MAX)
        }
    }

    fn wake_sources(&self, waker: &Waker) -> WakePolicy {
        self.irq.subscribe_wake(waker.clone());
        WakePolicy::Wired
    }
}

struct RunResult {
    rose_at: Cycle,
    received: u64,
    mtime: u64,
    fused_windows: u64,
    /// `(name, ticks_executed)` in registration order.
    ticks: Vec<(String, u64)>,
}

/// Build the rig, run to quiescence, and report what happened.
///
/// `preload` seeds the stream FIFO before cycle 0 so the consumer is
/// due from the start with deep occupancy — that is what lets the
/// fused scheduler negotiate *multi-member* windows across the
/// interrupt edge (an empty chain at cycle boundaries caps windows at
/// the in-flight occupancy instead).
fn run(mode: &str, items: u32, preload: u32, mtimecmp: u64) -> RunResult {
    let mut sim = Simulator::new(Freq::FABRIC_100MHZ);
    apply_mode(&mut sim, mode);

    let stream: Fifo<u32> = Fifo::new("stream", 2048);
    for i in 0..preload {
        stream.force_push(u32::MAX - i);
    }
    let received = Rc::new(Cell::new(0u64));
    sim.register(Box::new(Producer {
        out: stream.clone(),
        remaining: items,
    }));
    sim.register(Box::new(Consumer {
        input: stream.clone(),
        received: received.clone(),
    }));

    let (m, s) = link("clint", 2);
    let (clint, handle) = Clint::paper(s, CLINT_BASE);
    let irq = clint.timer_irq.clone();
    sim.register(Box::new(clint));
    let rose_at = Rc::new(Cell::new(None));
    sim.register(Box::new(IrqProbe {
        irq: irq.clone(),
        rose_at: rose_at.clone(),
    }));

    m.try_issue(0, MmReq::write(CLINT_BASE + CLINT_MTIMECMP, mtimecmp, 8))
        .unwrap();
    sim.run_until(10_000, || irq.get()).unwrap();
    sim.run_until_quiescent(10_000).unwrap();

    let stats = sim.kernel_stats();
    RunResult {
        rose_at: rose_at.get().expect("probe saw the interrupt"),
        received: received.get(),
        mtime: handle.mtime(),
        fused_windows: stats.fused_windows,
        ticks: stats
            .components
            .iter()
            .map(|c| (c.name.clone(), c.ticks_executed))
            .collect(),
    }
}

/// A timer edge inside a *solo* batch window: the producer's
/// `tick_batch` would happily run hundreds of cycles, but the CLINT's
/// scheduled edge caps the window so the interrupt lands exactly on
/// `mtimecmp * divider - 1` under every scheduler.
#[test]
fn timer_edge_caps_solo_batch_window() {
    let mut hinted: Option<RunResult> = None;
    for mode in MODES {
        let r = run(mode, 300, 0, 5);
        // 5 MHz timer on the 100 MHz fabric: mtime reaches 5 on the
        // divider edge of cycle 5 * 20 - 1 = 99, mid-stream.
        assert_eq!(r.rose_at, 99, "{mode}: irq rose off the exact edge");
        // The handle mirrors `mtime` as of the CLINT's last tick: at
        // least the edge value, more under naive (which keeps ticking
        // and refreshing the mirror after the edge).
        assert!(r.mtime >= 5, "{mode}: mtime mirror behind the edge");
        assert_eq!(r.received, 300, "{mode}: stream drained");
        // The hint-driven schedules execute identical tick sets; naive
        // additionally runs every no-op and is excluded.
        if mode != "naive" {
            if let Some(h) = &hinted {
                assert_eq!(h.ticks, r.ticks, "{mode}: tick counts diverged");
            } else {
                hinted = Some(r);
            }
        }
    }
}

/// A timer edge inside a *multi-member* fused window: producer and
/// consumer negotiate a window spanning the edge region, and the
/// CLINT's deadline truncates it to the exact cycle.
#[test]
fn timer_edge_caps_fused_window() {
    let mut hinted: Option<RunResult> = None;
    for mode in MODES {
        let r = run(mode, 300, 256, 5);
        assert_eq!(r.rose_at, 99, "{mode}: irq rose off the exact edge");
        assert!(r.mtime >= 5, "{mode}: mtime mirror behind the edge");
        assert_eq!(r.received, 556, "{mode}: stream drained");
        if mode == "fused" {
            assert!(
                r.fused_windows > 0,
                "fusion never engaged — the test lost its subject"
            );
        } else {
            assert_eq!(r.fused_windows, 0, "{mode}: fused windows without fusion");
        }
        if mode != "naive" {
            if let Some(h) = &hinted {
                assert_eq!(h.ticks, r.ticks, "{mode}: tick counts diverged");
            } else {
                hinted = Some(r);
            }
        }
    }
}

/// The edge cycle is exact for arbitrary `mtimecmp` values, including
/// ones that land a window boundary exactly on, one before, and one
/// after the edge.
#[test]
fn timer_edge_exact_for_varied_compares() {
    for cmp in [1u64, 2, 3, 7, 12] {
        for mode in ["active_set", "fused"] {
            let r = run(mode, 400, 128, cmp);
            assert_eq!(
                r.rose_at,
                cmp * 20 - 1,
                "{mode}: cmp={cmp} rose off the exact edge"
            );
        }
    }
}
