//! Block devices: the storage abstraction under the SD card and FAT32.

use rvcap_sim::state::{StateError, StateValue};

/// Block (sector) size in bytes. SD cards and FAT32 both use 512.
pub const BLOCK_SIZE: usize = 512;

/// A fixed-geometry block device.
pub trait BlockDevice {
    /// Number of addressable blocks.
    fn num_blocks(&self) -> u64;

    /// Read block `lba` into `buf`.
    ///
    /// Panics on an out-of-range LBA: callers (SD command layer,
    /// FAT32) validate ranges, so an OOB access is a bug, not an I/O
    /// error.
    fn read_block(&mut self, lba: u64, buf: &mut [u8; BLOCK_SIZE]);

    /// Write `buf` to block `lba`.
    fn write_block(&mut self, lba: u64, buf: &[u8; BLOCK_SIZE]);

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.num_blocks() * BLOCK_SIZE as u64
    }

    /// Checkpoint the device contents. The default declares the device
    /// unsnapshottable (`None`), which makes any enclosing
    /// [`crate::SdCard`] checkpoint fail loudly rather than silently
    /// dropping the medium.
    fn save_state(&self) -> Option<StateValue> {
        None
    }

    /// Inverse of [`BlockDevice::save_state`].
    fn restore_state(&mut self, v: &StateValue) -> Result<(), StateError> {
        let _ = v;
        Err(StateError::Unsupported {
            component: "block-device".into(),
        })
    }
}

/// An in-memory block device (the simulated SD card's flash array).
#[derive(Debug, Clone)]
pub struct MemBlockDevice {
    blocks: Vec<u8>,
    reads: u64,
    writes: u64,
}

impl MemBlockDevice {
    /// A zero-filled device of `num_blocks` blocks.
    pub fn new(num_blocks: u64) -> Self {
        MemBlockDevice {
            blocks: vec![0u8; num_blocks as usize * BLOCK_SIZE],
            reads: 0,
            writes: 0,
        }
    }

    /// A device sized in mebibytes (convenience for tests/examples).
    pub fn with_mib(mib: u64) -> Self {
        MemBlockDevice::new(mib * 1024 * 1024 / BLOCK_SIZE as u64)
    }

    /// Lifetime block reads (I/O accounting for benches).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Lifetime block writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl BlockDevice for MemBlockDevice {
    fn num_blocks(&self) -> u64 {
        (self.blocks.len() / BLOCK_SIZE) as u64
    }

    fn read_block(&mut self, lba: u64, buf: &mut [u8; BLOCK_SIZE]) {
        let off = lba as usize * BLOCK_SIZE;
        buf.copy_from_slice(&self.blocks[off..off + BLOCK_SIZE]);
        self.reads += 1;
    }

    fn write_block(&mut self, lba: u64, buf: &[u8; BLOCK_SIZE]) {
        let off = lba as usize * BLOCK_SIZE;
        self.blocks[off..off + BLOCK_SIZE].copy_from_slice(buf);
        self.writes += 1;
    }

    fn save_state(&self) -> Option<StateValue> {
        let mut b = rvcap_sim::state::StateBlob::new("storage.mem_block", 1);
        b.put(
            "blocks",
            StateValue::Bytes(std::sync::Arc::new(self.blocks.clone())),
        );
        b.put_u64("reads", self.reads);
        b.put_u64("writes", self.writes);
        Some(StateValue::Blob(Box::new(b)))
    }

    fn restore_state(&mut self, v: &StateValue) -> Result<(), StateError> {
        let b = v.as_blob("storage.mem_block")?;
        b.expect("storage.mem_block", 1)?;
        let blocks = b.get_bytes("blocks")?;
        if blocks.len() != self.blocks.len() {
            return Err(b.structure_error(format!(
                "device size mismatch: instance {} bytes, state {}",
                self.blocks.len(),
                blocks.len()
            )));
        }
        self.blocks.copy_from_slice(blocks);
        self.reads = b.get_u64("reads")?;
        self.writes = b.get_u64("writes")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let d = MemBlockDevice::with_mib(1);
        assert_eq!(d.num_blocks(), 2048);
        assert_eq!(d.capacity_bytes(), 1024 * 1024);
    }

    #[test]
    fn read_write_round_trip() {
        let mut d = MemBlockDevice::new(4);
        let mut block = [0u8; BLOCK_SIZE];
        block[0] = 0xAB;
        block[511] = 0xCD;
        d.write_block(2, &block);
        let mut back = [0u8; BLOCK_SIZE];
        d.read_block(2, &mut back);
        assert_eq!(back, block);
        // Neighbours untouched.
        d.read_block(1, &mut back);
        assert_eq!(back, [0u8; BLOCK_SIZE]);
        assert_eq!(d.writes(), 1);
    }

    #[test]
    #[should_panic]
    fn oob_read_panics() {
        let mut d = MemBlockDevice::new(2);
        let mut buf = [0u8; BLOCK_SIZE];
        d.read_block(2, &mut buf);
    }
}
