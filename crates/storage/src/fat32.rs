//! A minimalist FAT32 implementation.
//!
//! Matches the scope the paper describes (§III-A): reading, writing
//! and overwriting files. Concretely:
//!
//! * real on-disk FAT32 layout: BPB with `0x55AA` signature, two FAT
//!   copies kept in sync, data region in cluster chains, root
//!   directory as a normal cluster chain;
//! * 8.3 names in the root directory (no long file names, no
//!   subdirectories — the paper's bitstream store is a flat
//!   directory of `.pbit` files);
//! * `format`, `mount`, `create`, `read`, `overwrite`, `delete`,
//!   `list`, plus chunked [`Fat32Volume::read_into`] used by the
//!   drivers to stage a file into DDR block by block.

use crate::block::{BlockDevice, BLOCK_SIZE};

/// End-of-chain marker (any value ≥ 0x0FFFFFF8).
const EOC: u32 = 0x0FFF_FFFF;
/// FAT entries are 28-bit; the top nibble is reserved.
const FAT_MASK: u32 = 0x0FFF_FFFF;
/// Sectors per cluster used by [`Fat32Volume::format`].
const SECTORS_PER_CLUSTER: u32 = 8;
/// Reserved sectors before the first FAT.
const RESERVED_SECTORS: u32 = 32;
/// Directory entry size.
const DIRENT_SIZE: usize = 32;

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Volume has no/invalid FAT32 boot sector.
    NotFat32,
    /// File name is not a valid 8.3 name.
    BadName(String),
    /// File not found.
    NotFound(String),
    /// File already exists.
    Exists(String),
    /// No free clusters left.
    VolumeFull,
    /// Root directory has no free entry and cannot grow.
    DirectoryFull,
    /// Device too small to format.
    DeviceTooSmall,
    /// Corrupt cluster chain (cycle or out-of-range entry).
    CorruptChain(u32),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFat32 => write!(f, "not a FAT32 volume"),
            FsError::BadName(n) => write!(f, "invalid 8.3 name: {n}"),
            FsError::NotFound(n) => write!(f, "file not found: {n}"),
            FsError::Exists(n) => write!(f, "file already exists: {n}"),
            FsError::VolumeFull => write!(f, "no free clusters"),
            FsError::DirectoryFull => write!(f, "root directory full"),
            FsError::DeviceTooSmall => write!(f, "device too small for FAT32"),
            FsError::CorruptChain(c) => write!(f, "corrupt cluster chain at {c}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Volume geometry parsed from (or written to) the BPB.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    sectors_per_cluster: u32,
    reserved_sectors: u32,
    num_fats: u32,
    fat_sectors: u32,
    total_sectors: u32,
    root_cluster: u32,
}

impl Geometry {
    fn fat_start(&self, fat: u32) -> u32 {
        self.reserved_sectors + fat * self.fat_sectors
    }

    fn data_start(&self) -> u32 {
        self.reserved_sectors + self.num_fats * self.fat_sectors
    }

    fn cluster_count(&self) -> u32 {
        (self.total_sectors - self.data_start()) / self.sectors_per_cluster
    }

    fn cluster_bytes(&self) -> usize {
        self.sectors_per_cluster as usize * BLOCK_SIZE
    }

    /// First sector of a data cluster (clusters start at 2).
    fn cluster_sector(&self, cluster: u32) -> u32 {
        self.data_start() + (cluster - 2) * self.sectors_per_cluster
    }

    /// Highest valid cluster number.
    fn max_cluster(&self) -> u32 {
        self.cluster_count() + 1
    }
}

/// A mounted FAT32 volume over a block device.
pub struct Fat32Volume<D: BlockDevice> {
    dev: D,
    geo: Geometry,
    /// Next-free search hint (like FSInfo's next-free field).
    free_hint: u32,
}

/// A directory listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInfo {
    /// File name in `NAME.EXT` form.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// First cluster of the chain.
    pub first_cluster: u32,
}

impl<D: BlockDevice> Fat32Volume<D> {
    // ------------------------------------------------------------------
    // Format & mount
    // ------------------------------------------------------------------

    /// Create a fresh FAT32 filesystem on `dev` and mount it.
    pub fn format(mut dev: D) -> Result<Self, FsError> {
        let total_sectors = u32::try_from(dev.num_blocks()).map_err(|_| FsError::DeviceTooSmall)?;
        if total_sectors < 1024 {
            return Err(FsError::DeviceTooSmall);
        }
        // Solve FAT size: each FAT sector maps 128 clusters.
        // data = total - reserved - 2*fat ; clusters = data / spc ;
        // fat must cover clusters + 2 entries.
        let mut fat_sectors = 1u32;
        loop {
            let data = total_sectors - RESERVED_SECTORS - 2 * fat_sectors;
            let clusters = data / SECTORS_PER_CLUSTER;
            let needed = (clusters + 2).div_ceil(128);
            if needed <= fat_sectors {
                break;
            }
            fat_sectors = needed;
        }
        let geo = Geometry {
            sectors_per_cluster: SECTORS_PER_CLUSTER,
            reserved_sectors: RESERVED_SECTORS,
            num_fats: 2,
            fat_sectors,
            total_sectors,
            root_cluster: 2,
        };

        // Boot sector / BPB.
        let mut bpb = [0u8; BLOCK_SIZE];
        bpb[0] = 0xEB; // jump
        bpb[1] = 0x58;
        bpb[2] = 0x90;
        bpb[3..11].copy_from_slice(b"RVCAP1.0"); // OEM
        bpb[11..13].copy_from_slice(&(BLOCK_SIZE as u16).to_le_bytes());
        bpb[13] = SECTORS_PER_CLUSTER as u8;
        bpb[14..16].copy_from_slice(&(RESERVED_SECTORS as u16).to_le_bytes());
        bpb[16] = 2; // num FATs
                     // root entries (0 for FAT32), total16 (0), media, fatsz16 (0)
        bpb[21] = 0xF8;
        bpb[32..36].copy_from_slice(&total_sectors.to_le_bytes());
        bpb[36..40].copy_from_slice(&fat_sectors.to_le_bytes());
        bpb[44..48].copy_from_slice(&geo.root_cluster.to_le_bytes());
        bpb[82..90].copy_from_slice(b"FAT32   ");
        bpb[510] = 0x55;
        bpb[511] = 0xAA;
        dev.write_block(0, &bpb);

        // Zero both FATs.
        let zero = [0u8; BLOCK_SIZE];
        for fat in 0..2 {
            for s in 0..fat_sectors {
                dev.write_block((geo.fat_start(fat) + s) as u64, &zero);
            }
        }
        let mut vol = Fat32Volume {
            dev,
            geo,
            free_hint: 3,
        };
        // Reserved entries 0 and 1, root dir cluster chain (single
        // cluster, zeroed).
        vol.set_fat(0, 0x0FFF_FFF8)?;
        vol.set_fat(1, EOC)?;
        vol.set_fat(geo.root_cluster, EOC)?;
        vol.zero_cluster(geo.root_cluster);
        Ok(vol)
    }

    /// Mount an existing FAT32 volume.
    pub fn mount(mut dev: D) -> Result<Self, FsError> {
        let mut bpb = [0u8; BLOCK_SIZE];
        dev.read_block(0, &mut bpb);
        if bpb[510] != 0x55 || bpb[511] != 0xAA {
            return Err(FsError::NotFat32);
        }
        let bytes_per_sector = u16::from_le_bytes([bpb[11], bpb[12]]) as usize;
        if bytes_per_sector != BLOCK_SIZE {
            return Err(FsError::NotFat32);
        }
        let fat_sectors = u32::from_le_bytes([bpb[36], bpb[37], bpb[38], bpb[39]]);
        if fat_sectors == 0 {
            return Err(FsError::NotFat32); // FAT12/16, not 32
        }
        let geo = Geometry {
            sectors_per_cluster: bpb[13] as u32,
            reserved_sectors: u16::from_le_bytes([bpb[14], bpb[15]]) as u32,
            num_fats: bpb[16] as u32,
            fat_sectors,
            total_sectors: u32::from_le_bytes([bpb[32], bpb[33], bpb[34], bpb[35]]),
            root_cluster: u32::from_le_bytes([bpb[44], bpb[45], bpb[46], bpb[47]]),
        };
        if geo.sectors_per_cluster == 0 || geo.num_fats == 0 {
            return Err(FsError::NotFat32);
        }
        Ok(Fat32Volume {
            dev,
            geo,
            free_hint: 3,
        })
    }

    /// Release the underlying device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutably borrow the underlying device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    // ------------------------------------------------------------------
    // FAT access
    // ------------------------------------------------------------------

    fn fat_entry(&mut self, cluster: u32) -> Result<u32, FsError> {
        if cluster > self.geo.max_cluster() {
            return Err(FsError::CorruptChain(cluster));
        }
        let byte = cluster as u64 * 4;
        let sector = self.geo.fat_start(0) as u64 + byte / BLOCK_SIZE as u64;
        let off = (byte % BLOCK_SIZE as u64) as usize;
        let mut buf = [0u8; BLOCK_SIZE];
        self.dev.read_block(sector, &mut buf);
        Ok(u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]) & FAT_MASK)
    }

    fn set_fat(&mut self, cluster: u32, value: u32) -> Result<(), FsError> {
        if cluster > self.geo.max_cluster() {
            return Err(FsError::CorruptChain(cluster));
        }
        let byte = cluster as u64 * 4;
        let off = (byte % BLOCK_SIZE as u64) as usize;
        // Keep both FAT copies in sync.
        for fat in 0..self.geo.num_fats {
            let sector = self.geo.fat_start(fat) as u64 + byte / BLOCK_SIZE as u64;
            let mut buf = [0u8; BLOCK_SIZE];
            self.dev.read_block(sector, &mut buf);
            buf[off..off + 4].copy_from_slice(&(value & FAT_MASK).to_le_bytes());
            self.dev.write_block(sector, &buf);
        }
        Ok(())
    }

    fn alloc_cluster(&mut self) -> Result<u32, FsError> {
        let max = self.geo.max_cluster();
        let start = self.free_hint.clamp(3, max);
        let mut c = start;
        loop {
            if self.fat_entry(c)? == 0 {
                self.set_fat(c, EOC)?;
                self.free_hint = if c + 1 > max { 3 } else { c + 1 };
                return Ok(c);
            }
            c = if c + 1 > max { 3 } else { c + 1 };
            if c == start {
                return Err(FsError::VolumeFull);
            }
        }
    }

    fn free_chain(&mut self, first: u32) -> Result<(), FsError> {
        let mut c = first;
        let mut hops = 0u32;
        while (2..0x0FFF_FFF8).contains(&c) {
            let next = self.fat_entry(c)?;
            self.set_fat(c, 0)?;
            c = next;
            hops += 1;
            if hops > self.geo.cluster_count() {
                return Err(FsError::CorruptChain(c));
            }
        }
        Ok(())
    }

    /// Walk a chain collecting cluster numbers.
    fn chain(&mut self, first: u32) -> Result<Vec<u32>, FsError> {
        let mut out = Vec::new();
        let mut c = first;
        while (2..0x0FFF_FFF8).contains(&c) {
            out.push(c);
            if out.len() as u32 > self.geo.cluster_count() {
                return Err(FsError::CorruptChain(c));
            }
            c = self.fat_entry(c)?;
        }
        Ok(out)
    }

    fn zero_cluster(&mut self, cluster: u32) {
        let zero = [0u8; BLOCK_SIZE];
        let s0 = self.geo.cluster_sector(cluster);
        for s in 0..self.geo.sectors_per_cluster {
            self.dev.write_block((s0 + s) as u64, &zero);
        }
    }

    // ------------------------------------------------------------------
    // Directory handling (root only)
    // ------------------------------------------------------------------

    /// Iterate root-directory entries as (cluster, sector, offset, raw).
    fn scan_root<F>(&mut self, mut f: F) -> Result<(), FsError>
    where
        F: FnMut(u64, usize, &[u8; DIRENT_SIZE]) -> bool,
    {
        for cluster in self.chain(self.geo.root_cluster)? {
            let s0 = self.geo.cluster_sector(cluster) as u64;
            for s in 0..self.geo.sectors_per_cluster as u64 {
                let mut buf = [0u8; BLOCK_SIZE];
                self.dev.read_block(s0 + s, &mut buf);
                for e in 0..BLOCK_SIZE / DIRENT_SIZE {
                    let mut raw = [0u8; DIRENT_SIZE];
                    raw.copy_from_slice(&buf[e * DIRENT_SIZE..(e + 1) * DIRENT_SIZE]);
                    if !f(s0 + s, e * DIRENT_SIZE, &raw) {
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }

    fn find_entry(&mut self, name83: &[u8; 11]) -> Result<Option<(u64, usize, FileInfo)>, FsError> {
        let mut found = None;
        self.scan_root(|sector, off, raw| {
            if raw[0] == 0x00 {
                return false; // end of directory
            }
            if raw[0] == 0xE5 || raw[11] & 0x08 != 0 {
                return true; // deleted or volume label
            }
            if &raw[0..11] == name83 {
                found = Some((sector, off, parse_dirent(raw)));
                return false;
            }
            true
        })?;
        Ok(found)
    }

    fn write_dirent(&mut self, sector: u64, off: usize, raw: &[u8; DIRENT_SIZE]) {
        let mut buf = [0u8; BLOCK_SIZE];
        self.dev.read_block(sector, &mut buf);
        buf[off..off + DIRENT_SIZE].copy_from_slice(raw);
        self.dev.write_block(sector, &buf);
    }

    /// Find a free root-directory slot, growing the root chain if
    /// needed.
    fn free_slot(&mut self) -> Result<(u64, usize), FsError> {
        let mut slot = None;
        self.scan_root(|sector, off, raw| {
            if raw[0] == 0x00 || raw[0] == 0xE5 {
                slot = Some((sector, off));
                return false;
            }
            true
        })?;
        if let Some(s) = slot {
            return Ok(s);
        }
        // Root directory full: extend the chain by one cluster.
        let chain = self.chain(self.geo.root_cluster)?;
        let last = *chain.last().expect("root chain is never empty");
        let new = self.alloc_cluster()?;
        self.set_fat(last, new)?;
        self.zero_cluster(new);
        Ok((self.geo.cluster_sector(new) as u64, 0))
    }

    // ------------------------------------------------------------------
    // Public file API
    // ------------------------------------------------------------------

    /// List files in the root directory.
    pub fn list(&mut self) -> Result<Vec<FileInfo>, FsError> {
        let mut out = Vec::new();
        self.scan_root(|_, _, raw| {
            if raw[0] == 0x00 {
                return false;
            }
            if raw[0] != 0xE5 && raw[11] & 0x08 == 0 {
                out.push(parse_dirent(raw));
            }
            true
        })?;
        Ok(out)
    }

    /// Size of a file in bytes.
    pub fn file_size(&mut self, name: &str) -> Result<u32, FsError> {
        let n = name_to_83(name)?;
        self.find_entry(&n)?
            .map(|(_, _, info)| info.size)
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }

    /// Read a whole file.
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, FsError> {
        let n = name_to_83(name)?;
        let (_, _, info) = self
            .find_entry(&n)?
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let mut out = Vec::with_capacity(info.size as usize);
        self.read_into(&info, |chunk| out.extend_from_slice(chunk))?;
        Ok(out)
    }

    /// Stream a file's contents in cluster-sized chunks through `sink`
    /// — the shape the drivers use to copy SD → DDR without building
    /// the file in one allocation.
    pub fn read_into(
        &mut self,
        info: &FileInfo,
        mut sink: impl FnMut(&[u8]),
    ) -> Result<(), FsError> {
        if info.size == 0 {
            return Ok(());
        }
        let mut remaining = info.size as usize;
        for cluster in self.chain(info.first_cluster)? {
            let s0 = self.geo.cluster_sector(cluster) as u64;
            for s in 0..self.geo.sectors_per_cluster as u64 {
                if remaining == 0 {
                    return Ok(());
                }
                let mut buf = [0u8; BLOCK_SIZE];
                self.dev.read_block(s0 + s, &mut buf);
                let take = remaining.min(BLOCK_SIZE);
                sink(&buf[..take]);
                remaining -= take;
            }
        }
        if remaining > 0 {
            return Err(FsError::CorruptChain(info.first_cluster));
        }
        Ok(())
    }

    /// Create a new file. Fails if it exists.
    pub fn create(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let n = name_to_83(name)?;
        if self.find_entry(&n)?.is_some() {
            return Err(FsError::Exists(name.to_string()));
        }
        let first = self.write_data(data)?;
        let (sector, off) = self.free_slot()?;
        let raw = make_dirent(&n, first, data.len() as u32);
        self.write_dirent(sector, off, &raw);
        Ok(())
    }

    /// Replace an existing file's contents (the paper's "overwriting"
    /// case — updating a stored partial bitstream in place).
    pub fn overwrite(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let n = name_to_83(name)?;
        let (sector, off, info) = self
            .find_entry(&n)?
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        if info.first_cluster >= 2 {
            self.free_chain(info.first_cluster)?;
        }
        let first = self.write_data(data)?;
        let raw = make_dirent(&n, first, data.len() as u32);
        self.write_dirent(sector, off, &raw);
        Ok(())
    }

    /// Create or overwrite.
    pub fn write(&mut self, name: &str, data: &[u8]) -> Result<(), FsError> {
        match self.overwrite(name, data) {
            Err(FsError::NotFound(_)) => self.create(name, data),
            other => other,
        }
    }

    /// Delete a file.
    pub fn delete(&mut self, name: &str) -> Result<(), FsError> {
        let n = name_to_83(name)?;
        let (sector, off, info) = self
            .find_entry(&n)?
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        if info.first_cluster >= 2 {
            self.free_chain(info.first_cluster)?;
        }
        let mut raw = make_dirent(&n, 0, 0);
        raw[0] = 0xE5;
        self.write_dirent(sector, off, &raw);
        Ok(())
    }

    /// Free clusters remaining.
    pub fn free_clusters(&mut self) -> Result<u32, FsError> {
        let mut free = 0;
        for c in 2..=self.geo.max_cluster() {
            if self.fat_entry(c)? == 0 {
                free += 1;
            }
        }
        Ok(free)
    }

    /// Allocate a chain and write `data` into it; returns the first
    /// cluster (0 for empty data).
    fn write_data(&mut self, data: &[u8]) -> Result<u32, FsError> {
        if data.is_empty() {
            return Ok(0);
        }
        let cb = self.geo.cluster_bytes();
        let needed = data.len().div_ceil(cb);
        let mut first = 0u32;
        let mut prev = 0u32;
        for i in 0..needed {
            let c = match self.alloc_cluster() {
                Ok(c) => c,
                Err(e) => {
                    // Roll back the partial chain so a failed write
                    // does not leak clusters.
                    if first != 0 {
                        self.free_chain(first)?;
                    }
                    return Err(e);
                }
            };
            if i == 0 {
                first = c;
            } else {
                self.set_fat(prev, c)?;
            }
            prev = c;
            let chunk = &data[i * cb..((i + 1) * cb).min(data.len())];
            let s0 = self.geo.cluster_sector(c) as u64;
            for (si, part) in chunk.chunks(BLOCK_SIZE).enumerate() {
                let mut buf = [0u8; BLOCK_SIZE];
                buf[..part.len()].copy_from_slice(part);
                self.dev.write_block(s0 + si as u64, &buf);
            }
        }
        Ok(first)
    }
}

/// Convert `NAME.EXT` to the on-disk 11-byte 8.3 form.
fn name_to_83(name: &str) -> Result<[u8; 11], FsError> {
    let bad = || FsError::BadName(name.to_string());
    let upper = name.to_ascii_uppercase();
    let (stem, ext) = match upper.split_once('.') {
        Some((s, e)) => (s, e),
        None => (upper.as_str(), ""),
    };
    if stem.is_empty() || stem.len() > 8 || ext.len() > 3 {
        return Err(bad());
    }
    let valid = |s: &str| {
        s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"_-~!#$%&".contains(&b))
    };
    if !valid(stem) || !valid(ext) || ext.contains('.') || stem.contains('.') {
        return Err(bad());
    }
    let mut out = [b' '; 11];
    out[..stem.len()].copy_from_slice(stem.as_bytes());
    out[8..8 + ext.len()].copy_from_slice(ext.as_bytes());
    Ok(out)
}

/// Convert the on-disk form back to `NAME.EXT`.
fn name_from_83(raw: &[u8]) -> String {
    let stem: String = raw[..8]
        .iter()
        .take_while(|&&b| b != b' ')
        .map(|&b| b as char)
        .collect();
    let ext: String = raw[8..11]
        .iter()
        .take_while(|&&b| b != b' ')
        .map(|&b| b as char)
        .collect();
    if ext.is_empty() {
        stem
    } else {
        format!("{stem}.{ext}")
    }
}

fn parse_dirent(raw: &[u8; DIRENT_SIZE]) -> FileInfo {
    let hi = u16::from_le_bytes([raw[20], raw[21]]) as u32;
    let lo = u16::from_le_bytes([raw[26], raw[27]]) as u32;
    FileInfo {
        name: name_from_83(&raw[0..11]),
        size: u32::from_le_bytes([raw[28], raw[29], raw[30], raw[31]]),
        first_cluster: (hi << 16) | lo,
    }
}

fn make_dirent(name83: &[u8; 11], first_cluster: u32, size: u32) -> [u8; DIRENT_SIZE] {
    let mut raw = [0u8; DIRENT_SIZE];
    raw[0..11].copy_from_slice(name83);
    raw[11] = 0x20; // archive
    raw[20..22].copy_from_slice(&((first_cluster >> 16) as u16).to_le_bytes());
    raw[26..28].copy_from_slice(&(first_cluster as u16).to_le_bytes());
    raw[28..32].copy_from_slice(&size.to_le_bytes());
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;
    use proptest::prelude::*;

    fn volume() -> Fat32Volume<MemBlockDevice> {
        Fat32Volume::format(MemBlockDevice::with_mib(8)).unwrap()
    }

    #[test]
    fn format_and_mount() {
        let vol = volume();
        let dev = vol.into_device();
        let mut vol2 = Fat32Volume::mount(dev).unwrap();
        assert!(vol2.list().unwrap().is_empty());
    }

    #[test]
    fn mount_rejects_blank_device() {
        assert_eq!(
            Fat32Volume::mount(MemBlockDevice::with_mib(1)).err(),
            Some(FsError::NotFat32)
        );
    }

    #[test]
    fn create_read_round_trip() {
        let mut vol = volume();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        vol.create("SOBEL.PBI", &data).unwrap();
        assert_eq!(vol.read("SOBEL.PBI").unwrap(), data);
        assert_eq!(vol.file_size("sobel.pbi").unwrap(), 10_000);
    }

    #[test]
    fn names_are_case_insensitive_8_3() {
        let mut vol = volume();
        vol.create("Median.Bit", b"x").unwrap();
        assert!(vol.read("MEDIAN.BIT").is_ok());
        assert_eq!(vol.list().unwrap()[0].name, "MEDIAN.BIT");
    }

    #[test]
    fn bad_names_rejected() {
        let mut vol = volume();
        for bad in ["", "WAYTOOLONGNAME.BIT", "X.LONG", "A B.TXT", "A.B.C"] {
            assert!(
                matches!(vol.create(bad, b"d"), Err(FsError::BadName(_))),
                "{bad} should be invalid"
            );
        }
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut vol = volume();
        vol.create("A.BIN", b"1").unwrap();
        assert_eq!(
            vol.create("A.BIN", b"2"),
            Err(FsError::Exists("A.BIN".into()))
        );
    }

    #[test]
    fn overwrite_replaces_content_and_frees_old_chain() {
        let mut vol = volume();
        let big = vec![0xAAu8; 100_000];
        vol.create("F.BIN", &big).unwrap();
        let free_after_create = vol.free_clusters().unwrap();
        let small = vec![0x55u8; 100];
        vol.overwrite("F.BIN", &small).unwrap();
        assert_eq!(vol.read("F.BIN").unwrap(), small);
        assert!(
            vol.free_clusters().unwrap() > free_after_create,
            "old chain must be freed"
        );
    }

    #[test]
    fn overwrite_missing_file_errors() {
        let mut vol = volume();
        assert!(matches!(
            vol.overwrite("NO.BIN", b"x"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn write_is_create_or_overwrite() {
        let mut vol = volume();
        vol.write("W.BIN", b"one").unwrap();
        vol.write("W.BIN", b"two").unwrap();
        assert_eq!(vol.read("W.BIN").unwrap(), b"two");
        assert_eq!(vol.list().unwrap().len(), 1);
    }

    #[test]
    fn delete_frees_space_and_entry() {
        let mut vol = volume();
        let before = vol.free_clusters().unwrap();
        vol.create("D.BIN", &vec![1u8; 50_000]).unwrap();
        vol.delete("D.BIN").unwrap();
        assert!(matches!(vol.read("D.BIN"), Err(FsError::NotFound(_))));
        assert_eq!(vol.free_clusters().unwrap(), before);
        // The slot is reusable.
        vol.create("E.BIN", b"x").unwrap();
        assert_eq!(vol.list().unwrap().len(), 1);
    }

    #[test]
    fn empty_file_round_trip() {
        let mut vol = volume();
        vol.create("EMPTY.TXT", b"").unwrap();
        assert_eq!(vol.read("EMPTY.TXT").unwrap(), Vec::<u8>::new());
        assert_eq!(vol.file_size("EMPTY.TXT").unwrap(), 0);
    }

    #[test]
    fn many_files_grow_root_directory() {
        let mut vol = volume();
        // One cluster of root dir holds 4096/32 = 128 entries; write more.
        for i in 0..200 {
            vol.create(&format!("F{i}.BIN"), &[i as u8]).unwrap();
        }
        assert_eq!(vol.list().unwrap().len(), 200);
        assert_eq!(vol.read("F137.BIN").unwrap(), vec![137u8]);
    }

    #[test]
    fn volume_full_is_reported_and_rolls_back() {
        let mut vol = Fat32Volume::format(MemBlockDevice::new(1100)).unwrap();
        let free = vol.free_clusters().unwrap();
        let too_big = vec![0u8; (free as usize + 2) * 4096];
        assert_eq!(vol.create("BIG.BIN", &too_big), Err(FsError::VolumeFull));
        // All clusters rolled back.
        assert_eq!(vol.free_clusters().unwrap(), free);
    }

    #[test]
    fn paper_bitstream_file_staging() {
        // The paper's exact use: store a 650 892-byte partial
        // bitstream and stream it back cluster-wise.
        let mut vol = volume();
        let pbit: Vec<u8> = (0..650_892u32).map(|i| (i * 7 % 256) as u8).collect();
        vol.create("GAUSS.PBI", &pbit).unwrap();
        let info = vol
            .list()
            .unwrap()
            .into_iter()
            .find(|f| f.name == "GAUSS.PBI")
            .unwrap();
        let mut streamed = Vec::new();
        vol.read_into(&info, |chunk| streamed.extend_from_slice(chunk))
            .unwrap();
        assert_eq!(streamed, pbit);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_create_read_round_trip(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
            let mut vol = volume();
            vol.create("P.BIN", &data).unwrap();
            prop_assert_eq!(vol.read("P.BIN").unwrap(), data);
        }

        #[test]
        fn prop_overwrite_sequence_keeps_last(
            writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8192), 1..6)
        ) {
            let mut vol = volume();
            for w in &writes {
                vol.write("SEQ.BIN", w).unwrap();
            }
            prop_assert_eq!(&vol.read("SEQ.BIN").unwrap(), writes.last().unwrap());
            // Exactly one directory entry regardless of rewrites.
            prop_assert_eq!(vol.list().unwrap().len(), 1);
        }

        #[test]
        fn prop_remount_preserves_files(data in proptest::collection::vec(any::<u8>(), 1..4096)) {
            let mut vol = volume();
            vol.create("KEEP.BIN", &data).unwrap();
            let dev = vol.into_device();
            let mut vol2 = Fat32Volume::mount(dev).unwrap();
            prop_assert_eq!(vol2.read("KEEP.BIN").unwrap(), data);
        }
    }

    /// Model-based test: a random interleaving of create / overwrite /
    /// delete / read operations must behave exactly like a HashMap.
    mod model_based {
        // The parent tests module already imports the proptest prelude.
        use super::*;
        use std::collections::HashMap;

        #[derive(Debug, Clone)]
        enum Op {
            Create(u8, Vec<u8>),
            Overwrite(u8, Vec<u8>),
            Write(u8, Vec<u8>),
            Delete(u8),
            Read(u8),
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            let name = 0u8..5; // five possible files
            let data = proptest::collection::vec(any::<u8>(), 0..3000);
            prop_oneof![
                (name.clone(), data.clone()).prop_map(|(n, d)| Op::Create(n, d)),
                (name.clone(), data.clone()).prop_map(|(n, d)| Op::Overwrite(n, d)),
                (name.clone(), data).prop_map(|(n, d)| Op::Write(n, d)),
                name.clone().prop_map(Op::Delete),
                name.prop_map(Op::Read),
            ]
        }

        fn fname(n: u8) -> String {
            format!("FILE{n}.BIN")
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn prop_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..24)) {
                let mut vol = Fat32Volume::format(MemBlockDevice::with_mib(8)).unwrap();
                let mut model: HashMap<String, Vec<u8>> = HashMap::new();
                for op in ops {
                    match op {
                        Op::Create(n, data) => {
                            let name = fname(n);
                            let r = vol.create(&name, &data);
                            if let std::collections::hash_map::Entry::Vacant(e) = model.entry(name) {
                                prop_assert!(r.is_ok());
                                e.insert(data);
                            } else {
                                prop_assert!(matches!(r, Err(FsError::Exists(_))));
                            }
                        }
                        Op::Overwrite(n, data) => {
                            let name = fname(n);
                            let r = vol.overwrite(&name, &data);
                            if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(name) {
                                prop_assert!(r.is_ok());
                                e.insert(data);
                            } else {
                                prop_assert!(matches!(r, Err(FsError::NotFound(_))));
                            }
                        }
                        Op::Write(n, data) => {
                            let name = fname(n);
                            prop_assert!(vol.write(&name, &data).is_ok());
                            model.insert(name, data);
                        }
                        Op::Delete(n) => {
                            let name = fname(n);
                            let r = vol.delete(&name);
                            prop_assert_eq!(r.is_ok(), model.remove(&name).is_some());
                        }
                        Op::Read(n) => {
                            let name = fname(n);
                            match model.get(&name) {
                                Some(data) => {
                                    let got = vol.read(&name);
                                    prop_assert!(got.is_ok());
                                    prop_assert_eq!(&got.unwrap(), data);
                                }
                                None => prop_assert!(matches!(
                                    vol.read(&name),
                                    Err(FsError::NotFound(_))
                                )),
                            }
                        }
                    }
                }
                // Final state: directory listing matches the model.
                let listed: HashMap<String, u32> = vol
                    .list()
                    .unwrap()
                    .into_iter()
                    .map(|f| (f.name, f.size))
                    .collect();
                prop_assert_eq!(listed.len(), model.len());
                for (name, data) in &model {
                    prop_assert_eq!(listed.get(name).copied(), Some(data.len() as u32));
                }
                // And the volume survives a remount.
                let dev = vol.into_device();
                let mut vol2 = Fat32Volume::mount(dev).unwrap();
                for (name, data) in &model {
                    prop_assert_eq!(&vol2.read(name).unwrap(), data);
                }
            }
        }
    }
}
