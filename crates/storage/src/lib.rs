//! # rvcap-storage — SD card and minimalist FAT32
//!
//! The paper stages partial bitstreams on an SD card: *"We have
//! developed a set of software drivers to access the SoC I/O
//! peripherals to load the partial bitstreams from an external SD card
//! into the SoC's DDR memory. … A set of file I/O software functions
//! based on the minimalist implementation of the file allocation table
//! (FAT32) have been developed to support file reading, writing, and
//! overwriting."* (§III-A)
//!
//! This crate is that substrate, built from scratch:
//!
//! * [`block`] — the block-device abstraction and an in-memory device.
//! * [`sd`] — an SD card in SPI mode: byte-by-byte full-duplex
//!   exchange, command framing (CMD0/CMD8/ACMD41/CMD17/CMD24…), data
//!   tokens and response timing, backed by any block device.
//! * [`fat32`] — a minimalist FAT32: format, mount, create, read,
//!   overwrite, delete, list; 8.3 names in the root directory, cluster
//!   chains, double-FAT updates.
//!
//! The crate is pure logic (no simulation dependency): the SPI *link
//! timing* — bytes per second over the serial interface, which
//! dominates the paper's `init_RModules` staging step — is modelled by
//! the SPI peripheral in `rvcap-soc`, which calls
//! [`sd::SdCard::exchange`] once per simulated SPI byte transfer.

pub mod block;
pub mod fat32;
pub mod sd;

pub use block::{BlockDevice, MemBlockDevice, BLOCK_SIZE};
pub use fat32::{Fat32Volume, FsError};
pub use sd::SdCard;
