//! An SD card in SPI mode.
//!
//! The paper's SoC reads partial bitstreams from "an external SD card"
//! through "the serial-parallel interface (SPI) peripheral" (§III-A).
//! This model speaks the actual SPI-mode SD protocol, one full-duplex
//! byte exchange at a time: command frames with CRC7, R1/R3/R7
//! responses with Ncr delay, single-block read/write with start tokens
//! and CRC16, write busy signalling. The SPI master peripheral in
//! `rvcap-soc` clocks [`SdCard::exchange`] once per simulated byte
//! time, so SD staging throughput emerges from the SPI clock divider
//! exactly as on the board.
//!
//! Supported commands (the set a minimal FAT32 bitstream store needs):
//! CMD0, CMD8, CMD55/ACMD41, CMD58, CMD16, CMD17 (read block),
//! CMD24 (write block), CMD59. Multi-block transfers (CMD18/25) are
//! not modelled; the FAT32 layer reads cluster-by-cluster anyway.

use crate::block::{BlockDevice, BLOCK_SIZE};
use rvcap_sim::state::{StateBlob, StateError, StateValue};
use std::sync::Arc;

/// R1 bit: card is in idle state (initialization in progress).
pub const R1_IDLE: u8 = 0x01;
/// R1 bit: illegal command.
pub const R1_ILLEGAL: u8 = 0x04;
/// R1 bit: command CRC error.
pub const R1_CRC_ERROR: u8 = 0x08;
/// Start token for single-block read/write data.
pub const TOKEN_START: u8 = 0xFE;
/// Data-response token: data accepted.
pub const DATA_ACCEPTED: u8 = 0x05;
/// Data-response token: data rejected, CRC error.
pub const DATA_CRC_ERROR: u8 = 0x0B;

/// CRC7 over a 40-bit command (cmd byte + 4 arg bytes), as sent in the
/// final frame byte (`crc7 << 1 | 1`).
pub fn crc7(bytes: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in bytes {
        let mut d = b;
        for _ in 0..8 {
            crc <<= 1;
            if (d & 0x80) ^ (crc & 0x80) != 0 {
                crc ^= 0x09;
            }
            d <<= 1;
        }
    }
    crc & 0x7F
}

/// CRC16-CCITT (XModem) over a data block.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = 0u16;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Build a 6-byte SPI command frame (host-side helper for drivers).
pub fn command_frame(cmd: u8, arg: u32) -> [u8; 6] {
    let mut f = [0u8; 6];
    f[0] = 0x40 | (cmd & 0x3F);
    f[1..5].copy_from_slice(&arg.to_be_bytes());
    f[5] = (crc7(&f[..5]) << 1) | 1;
    f
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for the start of a command frame.
    Ready,
    /// Collecting the remaining bytes of a command frame.
    Command { received: usize },
    /// Waiting for the host's data token + block + CRC after CMD24.
    WriteData { received: usize, lba: u64 },
}

/// The SPI-mode SD card.
pub struct SdCard<D: BlockDevice> {
    dev: D,
    state: State,
    frame: [u8; 6],
    /// Bytes queued on MISO (responses, data, busy).
    out: std::collections::VecDeque<u8>,
    /// Write buffer: token + 512 + 2 CRC.
    wbuf: Vec<u8>,
    /// Card left idle state (ACMD41 completed)?
    initialized: bool,
    /// ACMD41 polls before reporting ready.
    init_polls_left: u8,
    /// Previous command was CMD55 (next is an ACMD).
    app_cmd: bool,
    /// CRC checking enabled (CMD59).
    crc_enabled: bool,
    blocks_read: u64,
    blocks_written: u64,
    commands: u64,
}

impl<D: BlockDevice> SdCard<D> {
    /// Wrap a block device as an SD card. The card starts
    /// uninitialized; hosts must run CMD0 / CMD8 / ACMD41.
    pub fn new(dev: D) -> Self {
        SdCard {
            dev,
            state: State::Ready,
            frame: [0; 6],
            out: std::collections::VecDeque::new(),
            wbuf: Vec::new(),
            initialized: false,
            init_polls_left: 2,
            app_cmd: false,
            crc_enabled: false,
            blocks_read: 0,
            blocks_written: 0,
            commands: 0,
        }
    }

    /// Release the underlying block device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Borrow the underlying block device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Blocks served via CMD17.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Blocks written via CMD24.
    pub fn blocks_written(&self) -> u64 {
        self.blocks_written
    }

    /// Commands processed.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Card finished initialization (ACMD41 returned ready)?
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Checkpoint the whole card: protocol engine *and* medium. Fails
    /// (`None`) when the underlying [`BlockDevice`] cannot snapshot
    /// itself, so a checkpoint never silently loses the flash contents.
    pub fn save_state(&self) -> Option<StateBlob> {
        let mut b = StateBlob::new("storage.sd_card", 1);
        b.put("dev", self.dev.save_state()?);
        let (state, received, lba) = match self.state {
            State::Ready => ("ready", None, None),
            State::Command { received } => ("command", Some(received as u64), None),
            State::WriteData { received, lba } => ("write_data", Some(received as u64), Some(lba)),
        };
        b.put_str("state", state);
        b.put_opt_u64("received", received);
        b.put_opt_u64("lba", lba);
        b.put("frame", StateValue::Bytes(Arc::new(self.frame.to_vec())));
        b.put(
            "out",
            StateValue::Bytes(Arc::new(self.out.iter().copied().collect())),
        );
        b.put("wbuf", StateValue::Bytes(Arc::new(self.wbuf.clone())));
        b.put_bool("initialized", self.initialized);
        b.put_u64("init_polls_left", self.init_polls_left as u64);
        b.put_bool("app_cmd", self.app_cmd);
        b.put_bool("crc_enabled", self.crc_enabled);
        b.put_u64("blocks_read", self.blocks_read);
        b.put_u64("blocks_written", self.blocks_written);
        b.put_u64("commands", self.commands);
        Some(b)
    }

    /// Inverse of [`SdCard::save_state`].
    pub fn restore_state(&mut self, state: &StateBlob) -> Result<(), StateError> {
        state.expect("storage.sd_card", 1)?;
        let missing = |field: &str| state.structure_error(format!("state lacks {field}"));
        self.dev.restore_state(state.get("dev")?)?;
        self.state = match state.get_str("state")? {
            "ready" => State::Ready,
            "command" => State::Command {
                received: state
                    .get_opt_u64("received")?
                    .ok_or_else(|| missing("received"))? as usize,
            },
            "write_data" => State::WriteData {
                received: state
                    .get_opt_u64("received")?
                    .ok_or_else(|| missing("received"))? as usize,
                lba: state.get_opt_u64("lba")?.ok_or_else(|| missing("lba"))?,
            },
            other => return Err(state.structure_error(format!("unknown state {other:?}"))),
        };
        let frame = state.get_bytes("frame")?;
        if frame.len() != 6 {
            return Err(
                state.structure_error(format!("frame is {} bytes, expected 6", frame.len()))
            );
        }
        self.frame.copy_from_slice(frame);
        self.out = state.get_bytes("out")?.iter().copied().collect();
        self.wbuf = state.get_bytes("wbuf")?.to_vec();
        self.initialized = state.get_bool("initialized")?;
        let polls = state.get_u64("init_polls_left")?;
        self.init_polls_left = u8::try_from(polls)
            .map_err(|_| state.structure_error(format!("init_polls_left {polls} exceeds u8")))?;
        self.app_cmd = state.get_bool("app_cmd")?;
        self.crc_enabled = state.get_bool("crc_enabled")?;
        self.blocks_read = state.get_u64("blocks_read")?;
        self.blocks_written = state.get_u64("blocks_written")?;
        self.commands = state.get_u64("commands")?;
        Ok(())
    }

    /// One full-duplex SPI byte exchange: the host shifts out `mosi`,
    /// the card returns the simultaneous MISO byte.
    pub fn exchange(&mut self, mosi: u8) -> u8 {
        // Drive MISO first: what goes out this byte-time was prepared
        // earlier (SPI is full duplex; the card cannot react to `mosi`
        // within the same byte).
        let miso = self.out.pop_front().unwrap_or(0xFF);
        self.absorb(mosi);
        miso
    }

    fn absorb(&mut self, mosi: u8) {
        match self.state {
            State::Ready => {
                // Command start: 01xxxxxx.
                if mosi & 0xC0 == 0x40 {
                    self.frame[0] = mosi;
                    self.state = State::Command { received: 1 };
                }
                // 0xFF and anything else between frames is ignored.
            }
            State::Command { received } => {
                self.frame[received] = mosi;
                if received + 1 == 6 {
                    self.state = State::Ready;
                    self.run_command();
                } else {
                    self.state = State::Command {
                        received: received + 1,
                    };
                }
            }
            State::WriteData { received, lba } => {
                if received == 0 && mosi != TOKEN_START {
                    // Still waiting for the start token; idle bytes ok.
                    if mosi == 0xFF {
                        return;
                    }
                    // Garbage where a token should be: reject.
                    self.state = State::Ready;
                    self.out.push_back(DATA_CRC_ERROR);
                    return;
                }
                self.wbuf.push(mosi);
                let expected = 1 + BLOCK_SIZE + 2;
                if self.wbuf.len() == expected {
                    let data: &[u8] = &self.wbuf[1..1 + BLOCK_SIZE];
                    let sent_crc =
                        u16::from_be_bytes([self.wbuf[expected - 2], self.wbuf[expected - 1]]);
                    let ok = !self.crc_enabled || sent_crc == crc16(data);
                    if ok {
                        let mut block = [0u8; BLOCK_SIZE];
                        block.copy_from_slice(data);
                        self.dev.write_block(lba, &block);
                        self.blocks_written += 1;
                        self.out.push_back(DATA_ACCEPTED);
                        // Busy (programming) for a few byte times.
                        for _ in 0..4 {
                            self.out.push_back(0x00);
                        }
                    } else {
                        self.out.push_back(DATA_CRC_ERROR);
                    }
                    self.wbuf.clear();
                    self.state = State::Ready;
                } else {
                    self.state = State::WriteData {
                        received: received + 1,
                        lba,
                    };
                }
            }
        }
    }

    fn push_r1(&mut self, r1: u8) {
        // Ncr: one idle byte before the response.
        self.out.push_back(0xFF);
        self.out.push_back(r1);
    }

    fn run_command(&mut self) {
        self.commands += 1;
        let cmd = self.frame[0] & 0x3F;
        let arg = u32::from_be_bytes([self.frame[1], self.frame[2], self.frame[3], self.frame[4]]);

        // CRC7 is mandatory for CMD0/CMD8 and for everything once
        // CMD59 enabled checking.
        let must_check = self.crc_enabled || cmd == 0 || cmd == 8;
        if must_check {
            let expect = (crc7(&self.frame[..5]) << 1) | 1;
            if self.frame[5] != expect {
                self.push_r1(R1_CRC_ERROR | if self.initialized { 0 } else { R1_IDLE });
                self.app_cmd = false;
                return;
            }
        }

        let idle_bit = if self.initialized { 0x00 } else { R1_IDLE };
        let was_app = std::mem::take(&mut self.app_cmd);

        match (cmd, was_app) {
            (0, _) => {
                // GO_IDLE_STATE: software reset.
                self.initialized = false;
                self.init_polls_left = 2;
                self.push_r1(R1_IDLE);
            }
            (8, _) => {
                // SEND_IF_COND: R7 echoes voltage/check pattern.
                self.push_r1(idle_bit);
                self.out.extend([0x00, 0x00, 0x01, (arg & 0xFF) as u8]);
            }
            (55, _) => {
                self.app_cmd = true;
                self.push_r1(idle_bit);
            }
            (41, true) => {
                // ACMD41: SD_SEND_OP_COND.
                if self.init_polls_left > 0 {
                    self.init_polls_left -= 1;
                    self.push_r1(R1_IDLE);
                } else {
                    self.initialized = true;
                    self.push_r1(0x00);
                }
            }
            (58, _) => {
                // READ_OCR: high-capacity card, powered up.
                self.push_r1(idle_bit);
                self.out.extend([0xC0, 0xFF, 0x80, 0x00]);
            }
            (59, _) => {
                self.crc_enabled = arg & 1 != 0;
                self.push_r1(idle_bit);
            }
            (16, _) => {
                // SET_BLOCKLEN: only 512 supported.
                self.push_r1(if arg == BLOCK_SIZE as u32 {
                    idle_bit
                } else {
                    R1_ILLEGAL | idle_bit
                });
            }
            (17, _) => {
                // READ_SINGLE_BLOCK (block addressing, HC card).
                let lba = arg as u64;
                if !self.initialized || lba >= self.dev.num_blocks() {
                    self.push_r1(R1_ILLEGAL | idle_bit);
                    return;
                }
                self.push_r1(0x00);
                // Access time: a couple of idle bytes before the token.
                self.out.extend([0xFF, 0xFF]);
                self.out.push_back(TOKEN_START);
                let mut block = [0u8; BLOCK_SIZE];
                self.dev.read_block(lba, &mut block);
                let crc = crc16(&block);
                self.out.extend(block);
                self.out.extend(crc.to_be_bytes());
                self.blocks_read += 1;
            }
            (24, _) => {
                // WRITE_BLOCK.
                let lba = arg as u64;
                if !self.initialized || lba >= self.dev.num_blocks() {
                    self.push_r1(R1_ILLEGAL | idle_bit);
                    return;
                }
                self.push_r1(0x00);
                self.wbuf.clear();
                self.state = State::WriteData { received: 0, lba };
            }
            _ => {
                self.push_r1(R1_ILLEGAL | idle_bit);
            }
        }
    }
}

/// Host-side initialization + block I/O over a raw exchange function —
/// shared by the SoC's SPI driver and the tests. `clock` performs one
/// byte exchange.
pub mod host {
    use super::*;

    /// Exchange until a non-0xFF byte appears (response polling), with
    /// a bounded number of attempts.
    pub fn wait_response(mut clock: impl FnMut(u8) -> u8, max: usize) -> Option<u8> {
        for _ in 0..max {
            let b = clock(0xFF);
            if b != 0xFF {
                return Some(b);
            }
        }
        None
    }

    /// Run the SPI-mode initialization sequence. Returns `true` on
    /// success.
    pub fn init(mut clock: impl FnMut(u8) -> u8) -> bool {
        // ≥74 dummy clocks with CS high are the card's power-up
        // requirement; the SPI peripheral handles CS — here we just
        // supply the clocks.
        for _ in 0..10 {
            clock(0xFF);
        }
        // CMD0 until idle.
        let mut ok = false;
        for _ in 0..4 {
            for b in command_frame(0, 0) {
                clock(b);
            }
            if wait_response(&mut clock, 8) == Some(R1_IDLE) {
                ok = true;
                break;
            }
        }
        if !ok {
            return false;
        }
        // CMD8 with the 0x1AA check pattern.
        for b in command_frame(8, 0x1AA) {
            clock(b);
        }
        if wait_response(&mut clock, 8) != Some(R1_IDLE) {
            return false;
        }
        let mut echo = [0u8; 4];
        for e in &mut echo {
            *e = clock(0xFF);
        }
        if echo[3] != 0xAA {
            return false;
        }
        // ACMD41 until ready.
        for _ in 0..64 {
            for b in command_frame(55, 0) {
                clock(b);
            }
            wait_response(&mut clock, 8);
            for b in command_frame(41, 0x4000_0000) {
                clock(b);
            }
            if wait_response(&mut clock, 8) == Some(0x00) {
                return true;
            }
        }
        false
    }

    /// Read one 512-byte block via CMD17.
    pub fn read_block(
        mut clock: impl FnMut(u8) -> u8,
        lba: u32,
        out: &mut [u8; BLOCK_SIZE],
    ) -> bool {
        for b in command_frame(17, lba) {
            clock(b);
        }
        if wait_response(&mut clock, 8) != Some(0x00) {
            return false;
        }
        // Wait for the start token.
        let mut token = None;
        for _ in 0..1000 {
            let b = clock(0xFF);
            if b != 0xFF {
                token = Some(b);
                break;
            }
        }
        if token != Some(TOKEN_START) {
            return false;
        }
        for byte in out.iter_mut() {
            *byte = clock(0xFF);
        }
        let crc = u16::from_be_bytes([clock(0xFF), clock(0xFF)]);
        crc == crc16(out)
    }

    /// Write one 512-byte block via CMD24.
    pub fn write_block(mut clock: impl FnMut(u8) -> u8, lba: u32, data: &[u8; BLOCK_SIZE]) -> bool {
        for b in command_frame(24, lba) {
            clock(b);
        }
        if wait_response(&mut clock, 8) != Some(0x00) {
            return false;
        }
        clock(0xFF); // one gap byte
        clock(TOKEN_START);
        for &b in data.iter() {
            clock(b);
        }
        for b in crc16(data).to_be_bytes() {
            clock(b);
        }
        let resp = match wait_response(&mut clock, 16) {
            Some(r) => r & 0x1F,
            None => return false,
        };
        if resp != DATA_ACCEPTED {
            return false;
        }
        // Wait out busy (MISO low).
        for _ in 0..1000 {
            if clock(0xFF) == 0xFF {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;
    use proptest::prelude::*;

    fn card() -> SdCard<MemBlockDevice> {
        SdCard::new(MemBlockDevice::with_mib(4))
    }

    #[test]
    fn crc7_known_vectors() {
        // CMD0 arg 0 has the well-known frame CRC 0x95.
        assert_eq!(command_frame(0, 0)[5], 0x95);
        // CMD8 arg 0x1AA has frame CRC 0x87.
        assert_eq!(command_frame(8, 0x1AA)[5], 0x87);
    }

    #[test]
    fn crc16_detects_change() {
        let a = [0u8; BLOCK_SIZE];
        let mut b = a;
        b[100] = 1;
        assert_ne!(crc16(&a), crc16(&b));
    }

    #[test]
    fn init_sequence_succeeds() {
        let mut c = card();
        assert!(host::init(|b| c.exchange(b)));
        assert!(c.is_initialized());
    }

    #[test]
    fn read_before_init_is_illegal() {
        let mut c = card();
        let mut buf = [0u8; BLOCK_SIZE];
        assert!(!host::read_block(|b| c.exchange(b), 0, &mut buf));
    }

    #[test]
    fn write_then_read_block() {
        let mut c = card();
        assert!(host::init(|b| c.exchange(b)));
        let mut data = [0u8; BLOCK_SIZE];
        for (i, d) in data.iter_mut().enumerate() {
            *d = (i % 255) as u8;
        }
        assert!(host::write_block(|b| c.exchange(b), 7, &data));
        let mut back = [0u8; BLOCK_SIZE];
        assert!(host::read_block(|b| c.exchange(b), 7, &mut back));
        assert_eq!(back, data);
        assert_eq!(c.blocks_written(), 1);
        assert_eq!(c.blocks_read(), 1);
    }

    #[test]
    fn out_of_range_lba_rejected() {
        let mut c = card();
        assert!(host::init(|b| c.exchange(b)));
        let blocks = c.device().num_blocks() as u32;
        let mut buf = [0u8; BLOCK_SIZE];
        assert!(!host::read_block(|b| c.exchange(b), blocks, &mut buf));
    }

    #[test]
    fn bad_command_crc_rejected() {
        let mut c = card();
        // CMD0 with a wrong CRC byte.
        let mut frame = command_frame(0, 0);
        frame[5] ^= 0x02;
        for b in frame {
            c.exchange(b);
        }
        let r = host::wait_response(|b| c.exchange(b), 8).unwrap();
        assert!(r & R1_CRC_ERROR != 0);
    }

    #[test]
    fn cmd0_resets_card() {
        let mut c = card();
        assert!(host::init(|b| c.exchange(b)));
        for b in command_frame(0, 0) {
            c.exchange(b);
        }
        assert_eq!(host::wait_response(|b| c.exchange(b), 8), Some(R1_IDLE));
        assert!(!c.is_initialized());
    }

    #[test]
    fn unknown_command_returns_illegal() {
        let mut c = card();
        assert!(host::init(|b| c.exchange(b)));
        for b in command_frame(42, 0) {
            c.exchange(b);
        }
        let r = host::wait_response(|b| c.exchange(b), 8).unwrap();
        assert!(r & R1_ILLEGAL != 0);
    }

    #[test]
    fn fat32_over_sd_card_end_to_end() {
        // Format a FAT32 volume, wrap it in an SD card, and read a file
        // back through the SPI protocol + a mounted view of the raw
        // device image reconstructed from block reads.
        use crate::fat32::Fat32Volume;
        let mut vol = Fat32Volume::format(MemBlockDevice::with_mib(4)).unwrap();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 201) as u8).collect();
        vol.create("BITS.PBI", &payload).unwrap();
        let mut c = SdCard::new(vol.into_device());
        assert!(host::init(|b| c.exchange(b)));
        // Re-read the whole device through CMD17 into a fresh image.
        let n = c.device().num_blocks();
        let mut image = MemBlockDevice::new(n);
        for lba in 0..n as u32 {
            let mut buf = [0u8; BLOCK_SIZE];
            assert!(host::read_block(|b| c.exchange(b), lba, &mut buf));
            image.write_block(lba as u64, &buf);
        }
        let mut vol2 = Fat32Volume::mount(image).unwrap();
        assert_eq!(vol2.read("BITS.PBI").unwrap(), payload);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_block_round_trip_via_spi(data in proptest::collection::vec(any::<u8>(), BLOCK_SIZE..=BLOCK_SIZE),
                                         lba in 0u32..512) {
            let mut c = card();
            prop_assert!(host::init(|b| c.exchange(b)));
            let mut block = [0u8; BLOCK_SIZE];
            block.copy_from_slice(&data);
            prop_assert!(host::write_block(|b| c.exchange(b), lba, &block));
            let mut back = [0u8; BLOCK_SIZE];
            prop_assert!(host::read_block(|b| c.exchange(b), lba, &mut back));
            prop_assert_eq!(back, block);
        }
    }
}
