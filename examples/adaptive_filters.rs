//! The paper's §IV-D case study as a runnable application: swap the
//! Sobel, Median and Gaussian filters into one partition at runtime
//! and process an image with each, verifying against the golden
//! software filters and writing the results as PGM images.
//!
//! ```text
//! cargo run --release --example adaptive_filters [--dim 128] [--out DIR]
//! ```
//!
//! The default 128×128 image keeps the demo fast; `--dim 512`
//! reproduces the paper's exact workload (Table IV timings).

use rvcap_accel::library::filter_library;
use rvcap_accel::{run_accelerator, FilterKind, Image};
use rvcap_core::drivers::{DmaMode, ReconfigModule, RvCapDriver};
use rvcap_core::system::SocBuilder;
use rvcap_fabric::bitstream::BitstreamBuilder;
use rvcap_fabric::rp::RpGeometry;
use rvcap_soc::map::DDR_BASE;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dim = args
        .iter()
        .position(|a| a == "--dim")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(128usize);
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // The paper's RP for 512×512; a smaller partition for quick runs.
    let geometry = if dim >= 512 {
        RpGeometry::paper_rp()
    } else {
        RpGeometry::scaled(4, 1, 1)
    };
    let library = filter_library(&geometry, dim, dim);
    let images: Vec<_> = FilterKind::ALL
        .iter()
        .map(|k| library.by_name(k.name()).unwrap().clone())
        .collect();
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .build();

    // A checkerboard + noise test image in DDR.
    let input = {
        let mut img = Image::checkerboard(dim, dim, dim / 8);
        let noise = Image::noise(dim, dim, 17);
        for r in 0..dim {
            for c in 0..dim {
                let v = img.get(r, c) / 2 + noise.get(r, c) / 2;
                img.set(r, c, v);
            }
        }
        img
    };
    let in_addr = DDR_BASE + 0x10_0000;
    let out_addr = DDR_BASE + 0x60_0000;
    let stage = DDR_BASE + 0xA0_0000;
    soc.handles.ddr.write_bytes(in_addr, input.as_bytes());
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        std::fs::write(format!("{dir}/input.pgm"), input.to_pgm()).expect("write input");
    }

    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    println!("adaptive image pipeline, {dim}×{dim}, one partition, three modules\n");
    for (kind, img) in FilterKind::ALL.iter().zip(&images) {
        // Stage this module's bitstream (backdoor: quickstart shows
        // the SD path) and swap it in.
        let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
        let bytes = bs.to_bytes();
        soc.handles.ddr.write_bytes(stage, &bytes);
        let module = ReconfigModule {
            name: kind.name().into(),
            rm_number: 0,
            start_address: stage,
            pbit_size: bytes.len() as u32,
        };
        let t = driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
        let icap = soc.handles.icap.clone();
        soc.core.wait_until(100_000, || !icap.busy()).unwrap();

        // Stream the image through the freshly loaded accelerator.
        let plic = soc.handles.plic.clone();
        let tc = run_accelerator(
            &mut soc.core,
            &plic,
            0,
            in_addr,
            out_addr,
            (dim * dim) as u32,
        );
        let hw_out = soc.handles.ddr.read_bytes(out_addr, dim * dim);
        let golden = kind.golden(&input);
        let ok = hw_out == golden.as_bytes();
        println!(
            "{:>8}: Td {:>4.0} µs | Tr {:>6.0} µs | Tc {:>6.0} µs | Tex {:>6.0} µs | output {}",
            kind.name(),
            t.td_us(),
            t.tr_us(),
            tc as f64 / 5.0,
            t.td_us() + t.tr_us() + tc as f64 / 5.0,
            if ok { "= golden ✓" } else { "≠ golden ✗" }
        );
        assert!(ok, "{} hardware output mismatch", kind.name());
        rvcap_core::drivers::uart_print(
            &mut soc.core,
            &format!("{} swapped in and verified\n", kind.name()),
        );
        if let Some(dir) = &out_dir {
            let img_out = Image::from_pixels(dim, dim, hw_out);
            std::fs::write(
                format!("{dir}/{}.pgm", kind.name().to_lowercase()),
                img_out.to_pgm(),
            )
            .expect("write output");
        }
    }
    println!(
        "\n{} reconfigurations, {} UART bytes, {} ICAP words consumed",
        soc.handles.rm_hosts[0].reconfig_count(),
        soc.handles.uart.len(),
        soc.handles.icap.words_consumed()
    );
    if let Some(dir) = &out_dir {
        println!("PGM images written to {dir}/");
    }
}
