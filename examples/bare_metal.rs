//! The reconfiguration driver as *actual RISC-V machine code*.
//!
//! The other examples run the drivers as Rust ports of the paper's C
//! listings. This one goes all the way down: the Listing-1 flow —
//! decouple, select ICAP, program the DMA, poll for completion,
//! recouple — hand-written in RV64 assembly, assembled by
//! `rvcap-rv64`, and executed instruction by instruction on the
//! interpreter, with every load/store crossing the simulated AXI
//! fabric. `rdcycle` brackets measure the timing from inside the
//! program, and the result is cross-checked against the Rust driver.
//!
//! ```text
//! cargo run --release --example bare_metal
//! ```

use rvcap_core::drivers::{DmaMode, ReconfigModule, RvCapDriver};
use rvcap_core::system::SocBuilder;
use rvcap_fabric::bitstream::BitstreamBuilder;
use rvcap_fabric::resources::Resources;
use rvcap_fabric::rm::{RmImage, RmLibrary};
use rvcap_fabric::rp::RpGeometry;
use rvcap_rv64::{assemble, Cpu, Reg, RunExit};
use rvcap_soc::cpu::InterpreterBus;
use rvcap_soc::map::DDR_BASE;

const STAGE: u64 = DDR_BASE + 0x40_0000;

/// Listing 1 in assembly. Registers: s0 = DMA, s1 = RP ctrl, s2 =
/// switch ctrl. Returns (cycles total) via rdcycle in a0/a1 brackets.
fn listing1_asm(pbit_size: u32) -> String {
    format!(
        "
        li   s0, 0x41000000      # DMA register window
        li   s1, 0x41010000      # RP control interface
        li   s2, 0x41020000      # stream switch control
        li   s3, 0x80400000      # bitstream staging address in DDR
        rdcycle a0               # T start

        # --- init_reconfig_process ---
        li   t0, 1
        sw   t0, 0(s1)           # decouple_accel(1)
        sw   t0, 0(s2)           # select_ICAP(1)
        sw   t0, 0(s0)           # dma_start: DMACR.RS
        # dma_write_stream(start_address, pbit_size)
        sw   s3, 0x18(s0)        # MM2S_SA
        sw   zero, 0x1C(s0)      # MM2S_SA_MSB
        li   t1, {pbit_size}
        sw   t1, 0x28(s0)        # MM2S_LENGTH — transfer starts

        # --- poll DMASR.IDLE (blocking mode) ---
        poll:
        lw   t2, 4(s0)
        andi t2, t2, 2
        beqz t2, poll
        li   t3, 0x1000
        sw   t3, 4(s0)           # W1C the IOC flag

        sw   zero, 0(s1)         # decouple_accel(0)
        sw   zero, 0(s2)         # select_ICAP(0)
        rdcycle a1               # T end
        ecall
        "
    )
}

fn main() {
    let geometry = RpGeometry::scaled(4, 1, 0);
    let img = RmImage::synthesize("ASM", geometry.frames(), Resources::new(300, 300, 1, 0));
    let mut lib = RmLibrary::new();
    lib.register_image(img.clone());
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry.clone()])
        .with_library(lib)
        .build();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
    let bytes = bs.to_bytes();
    soc.handles.ddr.write_bytes(STAGE, &bytes);
    println!(
        "bitstream: {} bytes, staged at {STAGE:#x}; driver: {} RV64 instructions",
        bytes.len(),
        assemble(&listing1_asm(bytes.len() as u32), 0x1_0000)
            .unwrap()
            .len()
    );

    // ---- run the assembly driver on the interpreter ----
    let program = assemble(&listing1_asm(bytes.len() as u32), 0x1_0000).expect("assembles");
    let mut cpu = Cpu::new(program, 0x1_0000);
    let ddr = soc.handles.ddr.clone();
    let mut bus = InterpreterBus::new(&mut soc.core, ddr);
    let result = cpu.run(&mut bus, 50_000_000);
    assert_eq!(result.exit, RunExit::Halted, "driver must run to ecall");
    let cycles = cpu.reg(Reg::a(1)) - cpu.reg(Reg::a(0));
    println!(
        "assembly driver: {} instructions retired, flow took {} cycles = {:.1} µs",
        result.instructions,
        cycles,
        cycles as f64 / 100.0
    );

    // The ICAP may still be consuming the trailer; settle and check.
    let icap = soc.handles.icap.clone();
    soc.core.wait_until(100_000, || !icap.busy()).unwrap();
    let record = soc.handles.icap.last_load().expect("a load happened");
    assert!(record.crc_ok, "bitstream must load intact");
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("ASM")
    );
    println!(
        "ICAP: {} frames at FAR {:#x}, CRC ok — partition hosts {:?}",
        record.frames,
        record.far_start,
        soc.handles.rm_hosts[0].active_module()
    );

    // ---- cross-check against the Rust driver on a fresh system ----
    let mut lib = RmLibrary::new();
    lib.register_image(img.clone());
    let mut soc2 = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(lib)
        .build();
    soc2.handles.ddr.write_bytes(STAGE, &bytes);
    let module = ReconfigModule {
        name: "ASM".into(),
        rm_number: 0,
        start_address: STAGE,
        pbit_size: bytes.len() as u32,
    };
    let driver = RvCapDriver::new(0, soc2.handles.plic.clone());
    let t = driver.init_reconfig_process(&mut soc2.core, &module, DmaMode::Blocking);
    let rust_cycles = (t.td_ticks + t.tr_ticks) * 20;
    println!(
        "Rust driver (blocking): Td+Tr = {} cycles = {:.1} µs",
        rust_cycles,
        rust_cycles as f64 / 100.0
    );
    let ratio = cycles as f64 / rust_cycles as f64;
    println!(
        "assembly/Rust ratio: {ratio:.3} (the assembly flow skips the C driver's \
         lookup/validation software, so it runs a touch faster)"
    );
    assert!(
        (0.5..=1.2).contains(&ratio),
        "both drivers must measure the same transfer"
    );
    println!("bare-metal OK");
}
