//! Head-to-head: the RV-CAP controller vs the AXI_HWICAP baseline on
//! the same SoC, same bitstream — the paper's central comparison —
//! plus the driver-level loop-unrolling study.
//!
//! ```text
//! cargo run --release --example hwicap_vs_rvcap
//! ```

use rvcap_core::drivers::{DmaMode, HwIcapDriver, ReconfigModule, RvCapDriver};
use rvcap_core::system::SocBuilder;
use rvcap_fabric::bitstream::BitstreamBuilder;
use rvcap_fabric::resources::Resources;
use rvcap_fabric::rm::{RmImage, RmLibrary};
use rvcap_fabric::rp::RpGeometry;
use rvcap_soc::map::DDR_BASE;

fn build() -> (rvcap_core::system::RvCapSoc, ReconfigModule) {
    // A mid-size partition (~360 frames) keeps HWICAP runs short while
    // showing the same ratios as the paper's 1611-frame RP.
    let geometry = RpGeometry::scaled(6, 1, 1);
    let image = RmImage::synthesize("VS", geometry.frames(), Resources::new(800, 900, 4, 4));
    let mut library = RmLibrary::new();
    library.register_image(image.clone());
    let soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .build();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &image.payload);
    let bytes = bs.to_bytes();
    let stage = DDR_BASE + 0x40_0000;
    soc.handles.ddr.write_bytes(stage, &bytes);
    let module = ReconfigModule {
        name: "VS".into(),
        rm_number: 0,
        start_address: stage,
        pbit_size: bytes.len() as u32,
    };
    (soc, module)
}

fn main() {
    let (mut soc, module) = build();
    println!(
        "bitstream: {} bytes ({} frames)\n",
        module.pbit_size,
        soc.handles.rps[0].frames()
    );

    // ---- RV-CAP ----
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    let t = driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
    let icap = soc.handles.icap.clone();
    soc.core.wait_until(100_000, || !icap.busy()).unwrap();
    assert!(soc.handles.icap.last_load().unwrap().crc_ok);
    let rvcap_mbs = t.throughput_mbs(module.pbit_size as u64);
    println!(
        "RV-CAP      : Tr {:>9.1} µs  →  {rvcap_mbs:>6.1} MB/s  (DMA + AXIS2ICAP, interrupt mode)",
        t.tr_us()
    );

    // ---- HWICAP at several unroll factors (fresh SoC each run) ----
    let mut hwicap16 = 0.0f64;
    for unroll in [1usize, 4, 16, 64] {
        let (mut soc, module) = build();
        let ddr = soc.handles.ddr.clone();
        let ticks = HwIcapDriver::with_unroll(unroll).reconfigure_rp(&mut soc.core, &ddr, &module);
        let mbs = module.pbit_size as f64 / (ticks as f64 / 5.0);
        if unroll == 16 {
            hwicap16 = mbs;
        }
        println!(
            "HWICAP  u={unroll:<2}: Tr {:>9.1} µs  →  {mbs:>6.2} MB/s  (CPU keyhole stores)",
            ticks as f64 / 5.0
        );
    }
    println!(
        "\nRV-CAP speedup over the 16-unrolled HWICAP driver: {:.1}× (paper: 398.1/8.23 ≈ 48×)",
        rvcap_mbs / hwicap16
    );
    println!(
        "resource price: RV-CAP {} vs HWICAP {}",
        rvcap_core::resources::rvcap_report().total(),
        rvcap_core::resources::hwicap_report().total()
    );
}
