//! Extension study: two reconfigurable partitions on one SoC.
//!
//! The paper's architecture supports "one or more RPs" (§III-A); its
//! evaluation uses one. This example builds two partitions, loads a
//! different filter into each, reconfigures RP1 **while RP0 keeps
//! computing**, and shows that (a) the active partition's output is
//! unaffected by the neighbouring reconfiguration and (b) the two
//! modules can then be used alternately without reloading.
//!
//! ```text
//! cargo run --release --example multi_rp
//! ```

use rvcap_accel::library::filter_library;
use rvcap_accel::{run_accelerator, FilterKind, Image};
use rvcap_core::drivers::{DmaMode, ReconfigModule, RvCapDriver};
use rvcap_core::system::SocBuilder;
use rvcap_fabric::bitstream::BitstreamBuilder;
use rvcap_fabric::rp::RpGeometry;
use rvcap_soc::map::DDR_BASE;

const DIM: usize = 64;
const IN_ADDR: u64 = DDR_BASE + 0x10_0000;
const OUT_ADDR: u64 = DDR_BASE + 0x60_0000;
const STAGE: u64 = DDR_BASE + 0xA0_0000;

fn main() {
    let geometry = RpGeometry::scaled(4, 1, 1);
    // One library serves both partitions (same frame count).
    let library = filter_library(&geometry, DIM, DIM);
    let gaussian = library.by_name("Gaussian").unwrap().clone();
    let sobel = library.by_name("Sobel").unwrap().clone();
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry.clone(), geometry])
        .with_library(library)
        .build();
    let input = Image::noise(DIM, DIM, 5);
    soc.handles.ddr.write_bytes(IN_ADDR, input.as_bytes());

    let rp0 = RvCapDriver::new(0, soc.handles.plic.clone());
    let rp1 = RvCapDriver::new(1, soc.handles.plic.clone());

    let load = |soc: &mut rvcap_core::system::RvCapSoc,
                driver: &RvCapDriver,
                rp: usize,
                img: &rvcap_fabric::rm::RmImage| {
        let far = soc.handles.rps[rp].far_base;
        let bs = BitstreamBuilder::kintex7().partial(far, &img.payload);
        let bytes = bs.to_bytes();
        soc.handles.ddr.write_bytes(STAGE, &bytes);
        let module = ReconfigModule {
            name: img.name.clone(),
            rm_number: rp as u32,
            start_address: STAGE,
            pbit_size: bytes.len() as u32,
        };
        let t = driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
        let icap = soc.handles.icap.clone();
        soc.core.wait_until(100_000, || !icap.busy()).unwrap();
        t
    };

    // 1. Gaussian into RP0.
    let t0 = load(&mut soc, &rp0, 0, &gaussian);
    println!(
        "RP0 ← Gaussian: Tr {:.0} µs; active: {:?}",
        t0.tr_us(),
        soc.handles.rm_hosts[0].active_module()
    );

    // 2. Run RP0 while loading Sobel into RP1. (The accelerator run
    //    and the reconfiguration share the single DMA sequentially in
    //    this SoC — the isolation property under test is the
    //    *partition state*, which survives its neighbour's
    //    reconfiguration untouched.)
    let plic = soc.handles.plic.clone();
    run_accelerator(
        &mut soc.core,
        &plic,
        0,
        IN_ADDR,
        OUT_ADDR,
        (DIM * DIM) as u32,
    );
    let gaussian_before = soc.handles.ddr.read_bytes(OUT_ADDR, DIM * DIM);
    let t1 = load(&mut soc, &rp1, 1, &sobel);
    println!(
        "RP1 ← Sobel:    Tr {:.0} µs; active: {:?} (RP0 still: {:?})",
        t1.tr_us(),
        soc.handles.rm_hosts[1].active_module(),
        soc.handles.rm_hosts[0].active_module()
    );
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("Gaussian"),
        "RP0 must survive RP1's reconfiguration"
    );

    // 3. Alternate the two accelerators without further reconfig.
    for (rp, kind) in [
        (0usize, FilterKind::Gaussian),
        (1, FilterKind::Sobel),
        (0, FilterKind::Gaussian),
    ] {
        let plic = soc.handles.plic.clone();
        let tc = run_accelerator(
            &mut soc.core,
            &plic,
            rp,
            IN_ADDR,
            OUT_ADDR,
            (DIM * DIM) as u32,
        );
        let out = soc.handles.ddr.read_bytes(OUT_ADDR, DIM * DIM);
        let ok = out == kind.golden(&input).as_bytes();
        println!(
            "run RP{rp} ({}): Tc {:.0} µs, output {}",
            kind.name(),
            tc as f64 / 5.0,
            if ok { "= golden ✓" } else { "≠ golden ✗" }
        );
        assert!(ok);
    }
    // RP0's pre-reconfig output is reproducible (nothing leaked).
    assert_eq!(
        gaussian_before,
        FilterKind::Gaussian.golden(&input).as_bytes(),
        "RP0 output before RP1's reconfiguration was already golden"
    );
    println!("\nmulti-RP OK: independent partitions, zero cross-talk");
}
