//! Quickstart: build the paper's SoC, stage a partial bitstream on the
//! SD card, load it through the full driver stack (SD → FAT32 → DDR →
//! DMA → ICAP), and print the timings the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart [--vcd FILE.vcd]
//! ```
//!
//! With `--vcd`, the reconfiguration datapath's waveform (decouple
//! line, stream-switch select, FIFO occupancies, ICAP word counter)
//! is written as a GTKWave-compatible VCD file.

use rvcap_core::drivers::{init_rmodules, DmaMode, RvCapDriver};
use rvcap_core::system::SocBuilder;
use rvcap_fabric::bitstream::BitstreamBuilder;
use rvcap_fabric::resources::Resources;
use rvcap_fabric::rm::{RmImage, RmLibrary};
use rvcap_fabric::rp::RpGeometry;
use rvcap_soc::map::DDR_BASE;

fn main() {
    // 1. A reconfigurable partition and a module image sized for it.
    //    (A small RP keeps the SD staging quick; swap in
    //    `RpGeometry::paper_rp()` for the paper's exact 650 892-byte
    //    configuration.)
    let geometry = RpGeometry::scaled(4, 1, 0);
    let image = RmImage::synthesize("DEMO", geometry.frames(), Resources::new(500, 400, 2, 0));
    let mut library = RmLibrary::new();
    library.register_image(image.clone());

    // 2. Build the SoC with the bitstream on its SD card. The far
    //    (frame address) of the partition is where the builder places
    //    RP0; build the bitstream for that address.
    let probe = SocBuilder::new().with_rps(vec![geometry.clone()]).build();
    let far = probe.handles.rps[0].far_base;
    let bitstream = BitstreamBuilder::kintex7().partial(far, &image.payload);
    println!(
        "partial bitstream: {} bytes for {} frames at FAR {:#x}",
        bitstream.len_bytes(),
        geometry.frames(),
        far
    );

    let args: Vec<String> = std::env::args().collect();
    let vcd_path = args
        .iter()
        .position(|a| a == "--vcd")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut builder = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .with_sd_file("DEMO.PBI", bitstream.to_bytes())
        .with_spi_clkdiv(1);
    if vcd_path.is_some() {
        builder = builder.with_vcd();
    }
    let mut soc = builder.build();

    // 3. init_RModules: stage SD → DDR through the SPI peripheral and
    //    the FAT32 driver (this is simulated I/O — every byte crosses
    //    the SPI link).
    let t0 = soc.core.now();
    let modules = init_rmodules(
        &mut soc.core,
        &soc.handles.ddr,
        DDR_BASE + 0x10_0000,
        &["DEMO.PBI"],
    );
    println!(
        "init_RModules: staged {} bytes from SD in {:.2} ms of simulated time",
        modules[0].pbit_size,
        (soc.core.now() - t0) as f64 / 100_000.0
    );

    // 4. The Listing-1 flow: decouple, select ICAP, DMA the bitstream,
    //    recouple. Non-blocking (interrupt) mode, as in the paper.
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    let timing = driver.init_reconfig_process(&mut soc.core, &modules[0], DmaMode::NonBlocking);
    let icap = soc.handles.icap.clone();
    soc.core.wait_until(100_000, || !icap.busy()).unwrap();

    println!(
        "reconfiguration: Td = {:.1} µs, Tr = {:.1} µs, throughput = {:.1} MB/s",
        timing.td_us(),
        timing.tr_us(),
        timing.throughput_mbs(modules[0].pbit_size as u64)
    );
    let record = soc.handles.icap.last_load().expect("a load completed");
    println!(
        "ICAP: {} frames written at FAR {:#x}, CRC {}",
        record.frames,
        record.far_start,
        if record.crc_ok { "ok" } else { "FAILED" }
    );
    println!(
        "partition now hosts: {:?}",
        soc.handles.rm_hosts[0].active_module()
    );
    assert!(record.crc_ok);
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("DEMO")
    );
    if let Some(path) = vcd_path {
        let dump = soc.handles.vcd.as_ref().expect("vcd enabled").render();
        std::fs::write(&path, &dump).expect("write VCD");
        println!("waveform written to {path} ({} bytes)", dump.len());
    }
    println!("quickstart OK");
}
