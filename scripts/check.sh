#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting. Everything runs
# offline — the workspace has no registry dependencies (see DESIGN.md
# §5), so this works in the sandboxed build environment as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

# RVCAP_STRICT=1 attaches the bus sanitizer to every SoC the tests
# build: any stream-framing, burst, pairing or decouple violation on
# any channel fails the MMIO-cleanliness asserts.
echo "== RVCAP_STRICT=1 cargo test -q =="
RVCAP_STRICT=1 cargo test -q

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "All checks passed."
