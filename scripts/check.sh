#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting. Everything runs
# offline — the workspace has no registry dependencies (see DESIGN.md
# §5), so this works in the sandboxed build environment as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

# RVCAP_STRICT=1 attaches the bus sanitizer to every SoC the tests
# build: any stream-framing, burst, pairing or decouple violation on
# any channel fails the MMIO-cleanliness asserts.
echo "== RVCAP_STRICT=1 cargo test -q =="
RVCAP_STRICT=1 cargo test -q

# Host-performance gate: one timed sample per rig × scheduler, written
# to BENCH_hostbench.json. Fails only when an active_set_batched row
# drops below its generous pinned cycles/sec floor (>5x regression —
# a broken scheduler, not a slow host).
echo "== hostbench --smoke (host-perf floors) =="
cargo run --release -q -p rvcap-bench --bin hostbench -- --smoke

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "All checks passed."
