#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting. Everything runs
# offline — the workspace has no registry dependencies (see DESIGN.md
# §5), so this works in the sandboxed build environment as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

# RVCAP_STRICT=1 attaches the bus sanitizer to every SoC the tests
# build: any stream-framing, burst, pairing or decouple violation on
# any channel fails the MMIO-cleanliness asserts.
echo "== RVCAP_STRICT=1 cargo test -q =="
RVCAP_STRICT=1 cargo test -q

# Fused parity sweep: the suites that pin all five schedules (naive,
# scan, active_set, +batching, fused) to bit-identical cycle counts,
# FIFO contents, sanitizer verdicts and tick accounting — including
# randomized backpressure / TLAST / decouple-gate toggles over the
# DMA→ICAP datapath and a CLINT timer firing mid-window.
echo "== fused parity sweep (five schedules, bit-identical) =="
RVCAP_STRICT=1 cargo test -q -p rvcap-sim --test scheduler_equivalence
RVCAP_STRICT=1 cargo test -q -p rvcap-axi --test fused_parity
RVCAP_STRICT=1 cargo test -q -p rvcap-soc --test clint_fusion

# Replay parity: checkpoint → restore into a fresh rig → continue must
# be bit-identical to the uninterrupted run — same cycles, component
# state, MMIO audits, sanitizer verdicts — under every scheduler mode.
# This is the proof obligation behind hostbench warm-boot forking. On
# a failure the harness bisects the first divergent cycle and writes
# target/replay-divergence-report.txt, which CI uploads as an artifact.
echo "== replay parity (checkpoint/restore/continue, five schedules) =="
RVCAP_STRICT=1 cargo test -q -p rvcap-repro --test replay_parity
RVCAP_STRICT=1 cargo test -q -p rvcap-sim --test replay_props

# Host-performance gate: the full median-of-3 grid per rig ×
# scheduler, written to BENCH_hostbench.json (plus
# BENCH_hostbench_summary.md with the fused-vs-unfused deltas).
# Warm-boot forking (each rig boots once; every mode × sample forks
# from the post-boot checkpoint) makes the robust median affordable
# here — the old single-sample --smoke run saved little and its fused
# rows jittered past the 20% baseline tolerance. Two gates, both on
# the fused rows: a generous pinned cycles/sec floor per rig (~5x
# under measured — a broken scheduler, not a slow host), and a
# relative gate against the committed BENCH_hostbench.json baseline
# (>20% drop after normalizing by the active_set ratio to cancel
# host-speed differences).
# --profile adds one profiled fused-mode pass per rig *after* its
# timed rows (attribution never perturbs the measured medians) and
# writes BENCH_hostbench_profile.md for the CI job summary.
echo "== hostbench (host-perf floors + baseline, median of 3) =="
cargo run --release -q -p rvcap-bench --bin hostbench -- --profile

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "All checks passed."
