#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting. Everything runs
# offline — the workspace has no registry dependencies (see DESIGN.md
# §5), so this works in the sandboxed build environment as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "All checks passed."
