#!/usr/bin/env bash
# Per-rig host-performance profiling helper.
#
# Usage:
#   scripts/profile.sh [rig] [mode]
#
#   rig   hostbench rig name (default: rvcap_paper). Run
#         `hostbench --help` rigs: rvcap_paper, rvcap_deep,
#         hwicap_paper, hwicap_small, hwicap_multi_rp, sd_staging.
#   mode  scheduler mode for the timed row (default: active_set).
#
# Always prints the built-in per-component tick-cost attribution
# (`hostbench --profile`, the table behind BENCH_hostbench_profile.md).
# When `perf` is on PATH, additionally records a cycles profile of the
# *unprofiled* run (so the attribution clock reads don't pollute the
# samples) and prints the top of `perf report`; pass
# PERF_FLAMEGRAPH=1 with `flamegraph` installed to emit an SVG.
set -euo pipefail
cd "$(dirname "$0")/.."

rig="${1:-rvcap_paper}"
mode="${2:-active_set}"

cargo build --release -q -p rvcap-bench --bin hostbench
bin="$PWD/target/release/hostbench"

echo "== tick-cost attribution: $rig ($mode + profiled fused pass) =="
# Write bench artifacts to a scratch dir so a filtered profiling run
# never clobbers the committed BENCH_* records.
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
(cd "$scratch" && RVCAP_RESULTS_DIR="$scratch" "$bin" --rig "$rig" --mode "$mode" --profile)

if command -v perf >/dev/null 2>&1; then
    echo
    echo "== perf record ($rig, $mode, unprofiled binary) =="
    perf record -g -o "$scratch/perf.data" \
        -- "$bin" --rig "$rig" --mode "$mode" >/dev/null
    perf report -i "$scratch/perf.data" --stdio --percent-limit 1 | head -40
    if [ "${PERF_FLAMEGRAPH:-0}" = "1" ] && command -v flamegraph >/dev/null 2>&1; then
        flamegraph --perfdata "$scratch/perf.data" -o "profile-$rig.svg"
        echo "wrote profile-$rig.svg"
    fi
else
    echo
    echo "(perf not found: skipping sampling profile — the attribution"
    echo " table above is the portable fallback)"
fi
