//! # rvcap-repro — top-level facade
//!
//! Re-exports the workspace crates under one roof for the examples and
//! integration tests. See `README.md` for the tour and `DESIGN.md` for
//! the system inventory.

pub use rvcap_accel as accel;
pub use rvcap_axi as axi;
pub use rvcap_baselines as baselines;
pub use rvcap_core as core;
pub use rvcap_fabric as fabric;
pub use rvcap_rv64 as rv64;
pub use rvcap_sim as sim;
pub use rvcap_soc as soc;
pub use rvcap_storage as storage;
