//! Interrupt-driven bare-metal flow on the RV64 interpreter: the
//! non-blocking (paper-default) completion mode, all the way down to
//! machine code — mtvec, WFI, trap entry, PLIC claim/complete, mret.

use rvcap_repro::core::drivers::ReconfigModule;
use rvcap_repro::core::system::SocBuilder;
use rvcap_repro::fabric::bitstream::BitstreamBuilder;
use rvcap_repro::fabric::resources::Resources;
use rvcap_repro::fabric::rm::{RmImage, RmLibrary};
use rvcap_repro::fabric::rp::RpGeometry;
use rvcap_repro::rv64::{assemble, Cpu, Reg, RunExit};
use rvcap_repro::soc::cpu::InterpreterBus;
use rvcap_repro::soc::map::{DDR_BASE, IRQ_DMA_MM2S};

const STAGE: u64 = DDR_BASE + 0x40_0000;

/// Listing 1 in interrupt mode, as machine code:
///  - handler at `vec`: claim from the PLIC, W1C the DMA IOC flag,
///    complete at the PLIC, set a5 = 1, mret;
///  - main: program mtvec/mie/mstatus, DMA with IOC enable, PLIC
///    enable, then `wfi` until the handler ran.
fn irq_driver_asm(pbit_size: u32) -> String {
    format!(
        "
        j    main
        # ---- trap handler (mtvec points here) ----
        handler:
        li   t5, 0x0C000000      # PLIC base
        lui  t6, 0x200
        add  t5, t5, t6
        lw   t4, 4(t5)           # claim (0x200004)
        li   t3, 0x1000
        sw   t3, 4(s0)           # DMA: W1C the IOC status bit
        sw   t4, 4(t5)           # complete
        li   a5, 1               # flag: transfer done
        mret

        main:
        li   s0, 0x41000000      # DMA registers
        li   s1, 0x41010000      # RP control
        li   s2, 0x41020000      # switch control
        li   s3, 0x80400000      # staged bitstream
        # trap setup
        li   t0, 4               # address of `handler` (main at 0, j +4)
        csrw mtvec, t0
        li   t0, 0x800           # MEIE
        csrw mie, t0
        li   t0, 8               # mstatus.MIE
        csrrs zero, mstatus, t0
        # PLIC: enable the DMA MM2S source
        li   t5, 0x0C000000
        lui  t6, 0x2
        add  t6, t5, t6
        li   t0, {irq_bit}
        sw   t0, 0(t6)           # PLIC_ENABLE @ 0x2000
        # Listing 1
        li   t0, 1
        sw   t0, 0(s1)           # decouple_accel(1)
        sw   t0, 0(s2)           # select_ICAP(1)
        li   t0, 0x1001          # RS | IOC_IrqEn
        sw   t0, 0(s0)           # dma_start + dma_config(non-blocking)
        sw   s3, 0x18(s0)        # MM2S_SA
        sw   zero, 0x1C(s0)
        li   t1, {pbit_size}
        sw   t1, 0x28(s0)        # MM2S_LENGTH — go
        # sleep until the completion interrupt
        sleep:
        wfi
        beqz a5, sleep
        sw   zero, 0(s1)         # decouple_accel(0)
        sw   zero, 0(s2)
        ecall
        ",
        irq_bit = 1u32 << IRQ_DMA_MM2S,
    )
}

#[test]
fn wfi_interrupt_driven_reconfiguration() {
    let geometry = RpGeometry::scaled(2, 0, 0);
    let img = RmImage::synthesize("IRQASM", geometry.frames(), Resources::ZERO);
    let mut lib = RmLibrary::new();
    lib.register_image(img.clone());
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(lib)
        .build();
    let bytes = BitstreamBuilder::kintex7()
        .partial(soc.handles.rps[0].far_base, &img.payload)
        .to_bytes();
    soc.handles.ddr.write_bytes(STAGE, &bytes);
    let _ = ReconfigModule {
        name: "IRQASM".into(),
        rm_number: 0,
        start_address: STAGE,
        pbit_size: bytes.len() as u32,
    };

    let program = assemble(&irq_driver_asm(bytes.len() as u32), 0).expect("assembles");
    let mut cpu = Cpu::new(program, 0);
    let ddr = soc.handles.ddr.clone();
    let plic = soc.handles.plic.clone();
    let mut bus = InterpreterBus::new(&mut soc.core, ddr).with_irq(plic, IRQ_DMA_MM2S);
    let result = cpu.run(&mut bus, 10_000_000);
    assert_eq!(result.exit, RunExit::Halted, "driver must reach ecall");
    assert_eq!(cpu.reg(Reg::a(5)), 1, "handler must have run");
    assert_eq!(cpu.interrupts_taken, 1, "exactly one external interrupt");
    // MIE restored by mret.
    assert_ne!(cpu.csrs.mstatus & rvcap_repro::rv64::cpu::MSTATUS_MIE, 0);

    // The load completed and the partition is active.
    let icap = soc.handles.icap.clone();
    soc.core.wait_until(100_000, || !icap.busy()).unwrap();
    assert!(soc.handles.icap.last_load().unwrap().crc_ok);
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("IRQASM")
    );
    // WFI means the CPU retired orders of magnitude fewer instructions
    // than a polling loop would need: the whole flow is ~50 retired
    // instructions; the transfer is ~74k cycles.
    assert!(
        result.instructions < 200,
        "{} instructions — WFI should sleep, not spin",
        result.instructions
    );
    assert!(result.cycles > 5_000, "cycles cover the whole transfer");
}

#[test]
fn interrupts_masked_when_mie_clear() {
    // Same flow but without setting mstatus.MIE: the interrupt stays
    // pending, WFI still wakes (per spec), and the handler never runs.
    let asm = "
        li   a5, 0
        li   t0, 4
        csrw mtvec, t0           # (bogus vector; must never be used)
        li   t0, 0x800
        csrw mie, t0             # MEIE set, but mstatus.MIE clear
        wfi                      # wakes on pending irq without trapping
        ecall
    ";
    let geometry = RpGeometry::scaled(1, 0, 0);
    let img = RmImage::synthesize("MASKED", geometry.frames(), Resources::ZERO);
    let mut lib = RmLibrary::new();
    lib.register_image(img.clone());
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(lib)
        .build();
    // Fire the DMA via the Rust driver so an IRQ pends while the
    // assembly sleeps.
    let bytes = BitstreamBuilder::kintex7()
        .partial(soc.handles.rps[0].far_base, &img.payload)
        .to_bytes();
    soc.handles.ddr.write_bytes(STAGE, &bytes);
    use rvcap_repro::core::drivers::{DmaMode, RvCapDriver};
    let module = ReconfigModule {
        name: "MASKED".into(),
        rm_number: 0,
        start_address: STAGE,
        pbit_size: bytes.len() as u32,
    };
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    // Program the DMA but don't claim the interrupt: leave it pending.
    driver.decouple_accel(&mut soc.core, true);
    driver.select_icap(&mut soc.core, true);
    driver.dma_start(&mut soc.core);
    driver.dma_config(&mut soc.core, DmaMode::NonBlocking);
    driver.dma_write_stream(&mut soc.core, module.start_address, module.pbit_size);

    let program = assemble(asm, 0).unwrap();
    let mut cpu = Cpu::new(program, 0);
    let ddr = soc.handles.ddr.clone();
    let plic = soc.handles.plic.clone();
    let mut bus = InterpreterBus::new(&mut soc.core, ddr).with_irq(plic, IRQ_DMA_MM2S);
    let result = cpu.run(&mut bus, 1_000_000);
    assert_eq!(result.exit, RunExit::Halted);
    assert_eq!(cpu.interrupts_taken, 0, "masked: no trap");
    assert_eq!(cpu.reg(Reg::a(5)), 0, "handler never ran");
}
