//! Calibration pins: the paper's headline numbers, measured on the
//! full system, asserted with tight tolerances. The simulation is
//! deterministic, so any drift here means a model change altered the
//! reproduced results — these tests are the contract of EXPERIMENTS.md.

use rvcap_repro::core::drivers::{DmaMode, HwIcapDriver, ReconfigModule, RvCapDriver};
use rvcap_repro::core::system::SocBuilder;
use rvcap_repro::fabric::bitstream::{Bitstream, BitstreamBuilder};
use rvcap_repro::fabric::resources::Resources;
use rvcap_repro::fabric::rm::{RmImage, RmLibrary};
use rvcap_repro::fabric::rp::RpGeometry;
use rvcap_repro::soc::map::DDR_BASE;

fn paper_rig() -> (rvcap_repro::core::system::RvCapSoc, ReconfigModule) {
    let geometry = RpGeometry::paper_rp();
    let img = RmImage::synthesize("CAL", geometry.frames(), Resources::ZERO);
    let mut lib = RmLibrary::new();
    lib.register_image(img.clone());
    let soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(lib)
        .build();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
    let bytes = bs.to_bytes();
    let stage = DDR_BASE + 0x40_0000;
    soc.handles.ddr.write_bytes(stage, &bytes);
    let module = ReconfigModule {
        name: "CAL".into(),
        rm_number: 0,
        start_address: stage,
        pbit_size: bytes.len() as u32,
    };
    (soc, module)
}

/// §IV-A: the paper RP's partial bitstream is exactly 650 892 bytes.
#[test]
fn paper_bitstream_size() {
    assert_eq!(RpGeometry::paper_rp().bitstream_bytes(), 650_892);
    assert_eq!(Bitstream::size_for_frames(1611), 650_892);
}

/// §IV-B / Table IV: T_d = 18 µs, T_r = 1651 µs (we measure 1649,
/// −0.12 %), throughput within [394, 400] MB/s.
#[test]
fn rvcap_headline_timings() {
    let (mut soc, module) = paper_rig();
    let d = RvCapDriver::new(0, soc.handles.plic.clone());
    let t = d.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
    assert!(
        (t.td_us() - 18.0).abs() <= 1.0,
        "Td {} µs (paper 18)",
        t.td_us()
    );
    assert!(
        (t.tr_us() - 1651.0).abs() <= 10.0,
        "Tr {} µs (paper 1651)",
        t.tr_us()
    );
    let mbs = t.throughput_mbs(module.pbit_size as u64);
    assert!(
        mbs > 393.0 && mbs < 400.0,
        "throughput {mbs} MB/s (paper 398.1 max, 400 ceiling)"
    );
}

/// §IV-C / Fig. 3: the maximum reconfiguration throughput over larger
/// bitstreams reaches the paper's 398.1 MB/s (and never the 400 MB/s
/// ceiling).
#[test]
fn rvcap_max_throughput_reaches_398() {
    let geometry = RpGeometry::scaled(48, 12, 4);
    let img = RmImage::synthesize("BIG", geometry.frames(), Resources::ZERO);
    let mut lib = RmLibrary::new();
    lib.register_image(img.clone());
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(lib)
        .build();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
    let bytes = bs.to_bytes();
    soc.handles.ddr.write_bytes(DDR_BASE + 0x40_0000, &bytes);
    let module = ReconfigModule {
        name: "BIG".into(),
        rm_number: 0,
        start_address: DDR_BASE + 0x40_0000,
        pbit_size: bytes.len() as u32,
    };
    let d = RvCapDriver::new(0, soc.handles.plic.clone());
    let t = d.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
    let mbs = t.throughput_mbs(module.pbit_size as u64);
    assert!((397.0..400.0).contains(&mbs), "max throughput {mbs} MB/s");
}

/// §IV-B: the HWICAP driver reaches 4.16 MB/s without unrolling —
/// giving the paper's 156.45 ms for the 650 892-byte bitstream — and
/// ~8.23 MB/s with the 16-unrolled loop.
#[test]
fn hwicap_throughput_both_unroll_points() {
    // Small RP: the per-word cost is identical, only duration scales.
    let geometry = RpGeometry::scaled(2, 0, 0);
    let img = RmImage::synthesize("HW", geometry.frames(), Resources::ZERO);
    let mut lib = RmLibrary::new();
    lib.register_image(img.clone());
    let build = || {
        let mut l = RmLibrary::new();
        l.register_image(img.clone());
        let soc = SocBuilder::new()
            .with_rps(vec![geometry.clone()])
            .with_library(l)
            .build();
        let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
        let bytes = bs.to_bytes();
        soc.handles.ddr.write_bytes(DDR_BASE + 0x40_0000, &bytes);
        let module = ReconfigModule {
            name: "HW".into(),
            rm_number: 0,
            start_address: DDR_BASE + 0x40_0000,
            pbit_size: bytes.len() as u32,
        };
        (soc, module)
    };
    drop(lib);

    let (mut soc, module) = build();
    let ddr = soc.handles.ddr.clone();
    let ticks = HwIcapDriver::with_unroll(1).reconfigure_rp(&mut soc.core, &ddr, &module);
    let mbs1 = module.pbit_size as f64 / (ticks as f64 / 5.0);
    assert!((mbs1 - 4.16).abs() < 0.1, "u=1: {mbs1} MB/s (paper 4.16)");

    let (mut soc, module) = build();
    let ddr = soc.handles.ddr.clone();
    let ticks = HwIcapDriver::with_unroll(16).reconfigure_rp(&mut soc.core, &ddr, &module);
    let mbs16 = module.pbit_size as f64 / (ticks as f64 / 5.0);
    assert!(
        (mbs16 - 8.23).abs() < 0.2,
        "u=16: {mbs16} MB/s (paper 8.23)"
    );

    // The paper's 156.45 ms extrapolates from the u=1 rate.
    let ms_for_paper_bitstream = 650_892.0 / mbs1 / 1000.0;
    assert!(
        (ms_for_paper_bitstream - 156.45).abs() < 2.0,
        "full-bitstream u=1 time {ms_for_paper_bitstream:.2} ms (paper 156.45)"
    );
}

/// Table I/II resource totals are derived, not hard-coded, and equal
/// the paper's numbers.
#[test]
fn resource_totals() {
    use rvcap_repro::core::resources::{full_soc_report, hwicap_report, rvcap_report};
    assert_eq!(rvcap_report().total(), Resources::new(2317, 3953, 6, 0));
    assert_eq!(hwicap_report().total(), Resources::new(1377, 2200, 2, 0));
    assert_eq!(
        full_soc_report().total(),
        Resources::new(74_393, 64_059, 92, 47)
    );
}

/// Table II models: measured throughput within 3 % of every published
/// figure (run at a reduced size; the models' rates are size-stable).
#[test]
fn table2_models_match_published() {
    for row in rvcap_repro::baselines::table2_rows(101 * 120) {
        let rel = (row.measured_mbs - row.published_mbs).abs() / row.published_mbs;
        assert!(
            rel < 0.03,
            "{}: {:.1} vs {:.1}",
            row.name,
            row.measured_mbs,
            row.published_mbs
        );
    }
}
