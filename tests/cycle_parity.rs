//! Cycle-count parity pins: the register-map refactor (and any future
//! change to the MMIO decode path) must be *cycle-identical* — the
//! fig3/table1/table2 rigs have to produce bit-identical tick counts.
//! The constants below were recorded from the pre-refactor tree; a
//! mismatch means the change altered simulated timing, not just code
//! structure.
//!
//! Every rig here runs **with the bus sanitizer attached**. The pins
//! were recorded before the sanitizer existed, so their continued
//! match is the proof that monitoring is passive: cycle counts are
//! bit-identical with it on or off. Each point additionally asserts
//! that the run recorded zero protocol violations.
//!
//! (Table II's two RISC-V rows are the same measurements as Table I —
//! the paper rig below covers both.)

use rvcap_bench::hostbench::SchedulerMode;
use rvcap_bench::paper_soc::{self, PaperRig};
use rvcap_repro::core::drivers::{DmaMode, HwIcapDriver, RvCapDriver};
use rvcap_repro::core::system::SocBuilder;
use rvcap_repro::fabric::rp::RpGeometry;

/// A paper rig with the protocol sanitizer watching every channel.
fn sanitized_rig(g: RpGeometry) -> PaperRig {
    paper_soc::rig_with_builder(SocBuilder::new().with_sanitizer(), g)
}

/// RV-CAP reconfiguration on one rig: (Td ticks, Tr ticks, final cycle).
fn rvcap_point(g: RpGeometry) -> (u64, u64, u64) {
    rvcap_point_sched(g, SchedulerMode::ActiveSetBatched)
}

/// Like [`rvcap_point`] under an explicit kernel scheduler.
fn rvcap_point_sched(g: RpGeometry, sched: SchedulerMode) -> (u64, u64, u64) {
    let PaperRig {
        mut soc, module, ..
    } = sanitized_rig(g);
    sched.apply(&mut soc.core.sim);
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    let t = driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
    let san = soc.handles.sanitizer.as_ref().expect("sanitizer attached");
    assert_eq!(
        san.violation_count(),
        0,
        "protocol violations: {:?}",
        san.violations()
    );
    (t.td_ticks, t.tr_ticks, soc.core.now())
}

/// HWICAP (Listing 2) reconfiguration on one rig: (ticks, final cycle).
fn hwicap_point(g: RpGeometry) -> (u64, u64) {
    hwicap_point_sched(g, SchedulerMode::ActiveSetBatched)
}

/// Like [`hwicap_point`] under an explicit kernel scheduler.
fn hwicap_point_sched(g: RpGeometry, sched: SchedulerMode) -> (u64, u64) {
    let PaperRig {
        mut soc, module, ..
    } = sanitized_rig(g);
    sched.apply(&mut soc.core.sim);
    let ddr = soc.handles.ddr.clone();
    let ticks = HwIcapDriver::new().reconfigure_rp(&mut soc.core, &ddr, &module);
    let san = soc.handles.sanitizer.as_ref().expect("sanitizer attached");
    assert_eq!(
        san.violation_count(),
        0,
        "protocol violations: {:?}",
        san.violations()
    );
    (ticks, soc.core.now())
}

/// Table I / Table II rig: the paper RP (650 892-byte bitstream).
#[test]
fn table1_rig_cycle_counts_are_pinned() {
    assert_eq!(
        rvcap_point(RpGeometry::paper_rp()),
        (90, 8245, 166770),
        "RV-CAP paper-rig ticks drifted"
    );
    assert_eq!(
        hwicap_point(RpGeometry::paper_rp()),
        (392724, 7854488),
        "HWICAP paper-rig ticks drifted"
    );
}

/// Fig. 3 rig: the smallest and a mid-size sweep geometry (the full
/// seven-point sweep is the bench binary's job; two points pin the
/// timing of both controllers across bitstream sizes).
#[test]
fn fig3_rig_cycle_counts_are_pinned() {
    assert_eq!(
        rvcap_point(RpGeometry::scaled(2, 0, 0)),
        (90, 473, 11330),
        "RV-CAP scaled(2,0,0) ticks drifted"
    );
    assert_eq!(
        hwicap_point(RpGeometry::scaled(2, 0, 0)),
        (17586, 351730),
        "HWICAP scaled(2,0,0) ticks drifted"
    );
    assert_eq!(
        rvcap_point(RpGeometry::scaled(8, 2, 1)),
        (90, 3281, 67486),
        "RV-CAP scaled(8,2,1) ticks drifted"
    );
    assert_eq!(
        hwicap_point(RpGeometry::scaled(8, 2, 1)),
        (153109, 3062192),
        "HWICAP scaled(8,2,1) ticks drifted"
    );
}

/// The pinned values must not depend on the kernel schedule: every
/// [`SchedulerMode`] reproduces them bit-identically. The small Fig. 3
/// rig runs under all four (naive included — affordable at 351 730
/// cycles even in debug builds); the paper rig runs under the three
/// hint-driven schedules, its naive reference being the hostbench
/// harness's job.
#[test]
fn pinned_rigs_match_under_every_scheduler() {
    for sched in SchedulerMode::ALL {
        assert_eq!(
            rvcap_point_sched(RpGeometry::scaled(2, 0, 0), sched),
            (90, 473, 11330),
            "RV-CAP scaled(2,0,0) drifted under {}",
            sched.name()
        );
        assert_eq!(
            hwicap_point_sched(RpGeometry::scaled(2, 0, 0), sched),
            (17586, 351730),
            "HWICAP scaled(2,0,0) drifted under {}",
            sched.name()
        );
    }
    for sched in [
        SchedulerMode::Scan,
        SchedulerMode::ActiveSet,
        SchedulerMode::ActiveSetBatched,
    ] {
        assert_eq!(
            rvcap_point_sched(RpGeometry::paper_rp(), sched),
            (90, 8245, 166770),
            "RV-CAP paper-rig ticks drifted under {}",
            sched.name()
        );
    }
}
