//! Determinism: the simulation is single-threaded and ticked in a
//! fixed order, so identical systems must produce *bit-identical*
//! cycle counts, timer readings, and memory contents across runs.
//! This property is what lets EXPERIMENTS.md quote exact numbers and
//! lets the calibration tests use tight tolerances.

use rvcap_repro::accel::library::filter_library;
use rvcap_repro::accel::{run_accelerator, Image};
use rvcap_repro::core::drivers::{DmaMode, ReconfigModule, RvCapDriver};
use rvcap_repro::core::system::SocBuilder;
use rvcap_repro::fabric::bitstream::BitstreamBuilder;
use rvcap_repro::fabric::rp::RpGeometry;
use rvcap_repro::soc::map::DDR_BASE;

const DIM: usize = 16;

/// One full reconfigure + accelerate run; returns every observable.
fn one_run() -> (u64, u64, u64, Vec<u8>, u64) {
    one_run_ff(true)
}

/// Same run with the kernel's idle fast-forward toggled explicitly.
fn one_run_ff(fast_forward: bool) -> (u64, u64, u64, Vec<u8>, u64) {
    let geometry = RpGeometry::scaled(1, 0, 0);
    let library = filter_library(&geometry, DIM, DIM);
    let img = library.by_name("Gaussian").unwrap().clone();
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .build();
    soc.core.sim.set_fast_forward(fast_forward);
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
    let bytes = bs.to_bytes();
    soc.handles.ddr.write_bytes(DDR_BASE + 0x40_0000, &bytes);
    let module = ReconfigModule {
        name: "Gaussian".into(),
        rm_number: 0,
        start_address: DDR_BASE + 0x40_0000,
        pbit_size: bytes.len() as u32,
    };
    let input = Image::noise(DIM, DIM, 7);
    soc.handles
        .ddr
        .write_bytes(DDR_BASE + 0x10_0000, input.as_bytes());
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    let t = driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
    let icap = soc.handles.icap.clone();
    soc.core.wait_until(100_000, || !icap.busy()).unwrap();
    let plic = soc.handles.plic.clone();
    let tc = run_accelerator(
        &mut soc.core,
        &plic,
        0,
        DDR_BASE + 0x10_0000,
        DDR_BASE + 0x20_0000,
        (DIM * DIM) as u32,
    );
    (
        t.td_ticks,
        t.tr_ticks,
        tc,
        soc.handles.ddr.read_bytes(DDR_BASE + 0x20_0000, DIM * DIM),
        soc.core.now(),
    )
}

#[test]
fn identical_runs_are_bit_identical() {
    let a = one_run();
    let b = one_run();
    assert_eq!(a.0, b.0, "Td");
    assert_eq!(a.1, b.1, "Tr");
    assert_eq!(a.2, b.2, "Tc");
    assert_eq!(a.3, b.3, "output bytes");
    assert_eq!(a.4, b.4, "final cycle count");
}

/// Idle fast-forward only skips ticks the components declared to be
/// no-ops, so every observable — including the final cycle counter —
/// must be bit-identical with the optimization on or off.
#[test]
fn fast_forward_is_bit_identical_to_naive_schedule() {
    let ff = one_run_ff(true);
    let naive = one_run_ff(false);
    assert_eq!(ff.0, naive.0, "Td");
    assert_eq!(ff.1, naive.1, "Tr");
    assert_eq!(ff.2, naive.2, "Tc");
    assert_eq!(ff.3, naive.3, "output bytes");
    assert_eq!(ff.4, naive.4, "final cycle count");
}

/// The full Table I measurement (RV-CAP + HWICAP throughput on the
/// paper's 650 892-byte bitstream) serializes to byte-identical JSON
/// with fast-forward on and off.
#[test]
fn table1_json_is_identical_with_and_without_fast_forward() {
    use rvcap_bench::report::Json;
    let on = rvcap_bench::tables::table1_run(true);
    let off = rvcap_bench::tables::table1_run(false);
    assert_eq!(on.rows.to_json(), off.rows.to_json());
    // And fast-forward actually did something on this workload.
    assert!(
        on.hwicap_stats.jumps > 0,
        "expected idle jumps in the HWICAP run"
    );
    assert_eq!(off.hwicap_stats.jumps, 0, "disabled means no jumps");
}

#[test]
fn paper_headline_numbers_are_stable_constants() {
    // Not a tolerance check (calibration.rs does that) — an exactness
    // check: the measured values are single deterministic integers.
    use rvcap_repro::fabric::resources::Resources;
    use rvcap_repro::fabric::rm::{RmImage, RmLibrary};
    let run = || {
        let geometry = RpGeometry::paper_rp();
        let img = RmImage::synthesize("D", geometry.frames(), Resources::ZERO);
        let mut lib = RmLibrary::new();
        lib.register_image(img.clone());
        let mut soc = SocBuilder::new()
            .with_rps(vec![geometry])
            .with_library(lib)
            .build();
        let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
        let bytes = bs.to_bytes();
        soc.handles.ddr.write_bytes(DDR_BASE + 0x40_0000, &bytes);
        let module = ReconfigModule {
            name: "D".into(),
            rm_number: 0,
            start_address: DDR_BASE + 0x40_0000,
            pbit_size: bytes.len() as u32,
        };
        let d = RvCapDriver::new(0, soc.handles.plic.clone());
        let t = d.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
        (t.td_ticks, t.tr_ticks)
    };
    assert_eq!(run(), run());
}
