//! End-to-end integration: the full path the paper describes, from a
//! file on the SD card to a functioning hardware accelerator.

use rvcap_repro::accel::library::filter_library;
use rvcap_repro::accel::{run_accelerator, FilterKind, Image};
use rvcap_repro::core::drivers::{init_rmodules, DmaMode, HwIcapDriver, RvCapDriver};
use rvcap_repro::core::system::SocBuilder;
use rvcap_repro::fabric::bitstream::BitstreamBuilder;
use rvcap_repro::fabric::rp::RpGeometry;
use rvcap_repro::soc::map::DDR_BASE;

const DIM: usize = 24;

/// SD card → FAT32 → DDR → DMA → ICAP → active module → accelerator
/// output identical to the golden filter: the complete §III flow.
#[test]
fn sd_to_accelerator_full_path() {
    let geometry = RpGeometry::scaled(1, 0, 0);
    let library = filter_library(&geometry, DIM, DIM);
    let median = library.by_name("Median").unwrap().clone();

    // Build the SD image: the partial bitstream as a FAT32 file.
    // (The FAR must match where the builder will place RP0; probe it.)
    let far = SocBuilder::new()
        .with_rps(vec![geometry.clone()])
        .build()
        .handles
        .rps[0]
        .far_base;
    let bitstream = BitstreamBuilder::kintex7().partial(far, &median.payload);

    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .with_sd_file("MEDIAN.PBI", bitstream.to_bytes())
        .with_spi_clkdiv(1)
        .build();

    // Stage from SD through the SPI peripheral (every byte simulated).
    let modules = init_rmodules(
        &mut soc.core,
        &soc.handles.ddr,
        DDR_BASE + 0x20_0000,
        &["MEDIAN.PBI"],
    );
    assert_eq!(modules.len(), 1);
    assert_eq!(modules[0].pbit_size as usize, bitstream.len_bytes());

    // Reconfigure.
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    let timing = driver.init_reconfig_process(&mut soc.core, &modules[0], DmaMode::NonBlocking);
    let icap = soc.handles.icap.clone();
    soc.core.wait_until(100_000, || !icap.busy()).unwrap();
    assert!(soc.handles.icap.last_load().unwrap().crc_ok);
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("Median")
    );
    assert!(timing.td_ticks > 0 && timing.tr_ticks > 0);

    // Accelerate and compare against golden.
    let input = Image::noise(DIM, DIM, 1);
    let in_addr = DDR_BASE + 0x30_0000;
    let out_addr = DDR_BASE + 0x38_0000;
    soc.handles.ddr.write_bytes(in_addr, input.as_bytes());
    let plic = soc.handles.plic.clone();
    run_accelerator(
        &mut soc.core,
        &plic,
        0,
        in_addr,
        out_addr,
        (DIM * DIM) as u32,
    );
    assert_eq!(
        soc.handles.ddr.read_bytes(out_addr, DIM * DIM),
        FilterKind::Median.golden(&input).as_bytes()
    );
}

/// The same module loads correctly through the AXI_HWICAP baseline —
/// slower, same functional result.
#[test]
fn hwicap_path_is_functionally_equivalent() {
    let geometry = RpGeometry::scaled(1, 0, 0);
    let library = filter_library(&geometry, DIM, DIM);
    let gaussian = library.by_name("Gaussian").unwrap().clone();
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .build();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &gaussian.payload);
    let bytes = bs.to_bytes();
    let stage = DDR_BASE + 0x40_0000;
    soc.handles.ddr.write_bytes(stage, &bytes);
    let module = rvcap_repro::core::drivers::ReconfigModule {
        name: "Gaussian".into(),
        rm_number: 0,
        start_address: stage,
        pbit_size: bytes.len() as u32,
    };
    let ddr = soc.handles.ddr.clone();
    HwIcapDriver::new().init_reconfig_process(&mut soc.core, &ddr, &module, 0);
    let icap = soc.handles.icap.clone();
    soc.core.wait_until(100_000, || !icap.busy()).unwrap();
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("Gaussian")
    );
    assert!(soc
        .handles
        .uart
        .text()
        .contains("reconfiguration successful"));

    let input = Image::gradient(DIM, DIM);
    let in_addr = DDR_BASE + 0x30_0000;
    let out_addr = DDR_BASE + 0x38_0000;
    soc.handles.ddr.write_bytes(in_addr, input.as_bytes());
    let plic = soc.handles.plic.clone();
    run_accelerator(
        &mut soc.core,
        &plic,
        0,
        in_addr,
        out_addr,
        (DIM * DIM) as u32,
    );
    assert_eq!(
        soc.handles.ddr.read_bytes(out_addr, DIM * DIM),
        FilterKind::Gaussian.golden(&input).as_bytes()
    );
}

/// Swapping modules repeatedly in one partition: each swap fully
/// replaces the previous function (the core DPR property).
#[test]
fn repeated_module_swaps() {
    let geometry = RpGeometry::scaled(1, 0, 0);
    let library = filter_library(&geometry, DIM, DIM);
    let images: Vec<_> = FilterKind::ALL
        .iter()
        .map(|k| library.by_name(k.name()).unwrap().clone())
        .collect();
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .build();
    let input = Image::checkerboard(DIM, DIM, 3);
    let in_addr = DDR_BASE + 0x30_0000;
    let out_addr = DDR_BASE + 0x38_0000;
    let stage = DDR_BASE + 0x40_0000;
    soc.handles.ddr.write_bytes(in_addr, input.as_bytes());
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());

    // Two full rounds over all three filters.
    for round in 0..2 {
        for (kind, img) in FilterKind::ALL.iter().zip(&images) {
            let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
            let bytes = bs.to_bytes();
            soc.handles.ddr.write_bytes(stage, &bytes);
            let module = rvcap_repro::core::drivers::ReconfigModule {
                name: kind.name().into(),
                rm_number: 0,
                start_address: stage,
                pbit_size: bytes.len() as u32,
            };
            driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
            let icap = soc.handles.icap.clone();
            soc.core.wait_until(100_000, || !icap.busy()).unwrap();
            let plic = soc.handles.plic.clone();
            run_accelerator(
                &mut soc.core,
                &plic,
                0,
                in_addr,
                out_addr,
                (DIM * DIM) as u32,
            );
            assert_eq!(
                soc.handles.ddr.read_bytes(out_addr, DIM * DIM),
                kind.golden(&input).as_bytes(),
                "round {round}, filter {}",
                kind.name()
            );
        }
    }
    assert_eq!(soc.handles.rm_hosts[0].reconfig_count(), 6);
}

/// The ICAP word count and the DMA byte count agree across the whole
/// datapath (no words lost or duplicated in switch/bridge/isolators).
#[test]
fn datapath_conservation() {
    let geometry = RpGeometry::scaled(2, 1, 0);
    let library = filter_library(&geometry, DIM, DIM);
    let img = library.by_name("Sobel").unwrap().clone();
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .build();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
    let bytes = bs.to_bytes();
    soc.handles.ddr.write_bytes(DDR_BASE + 0x40_0000, &bytes);
    let module = rvcap_repro::core::drivers::ReconfigModule {
        name: "Sobel".into(),
        rm_number: 0,
        start_address: DDR_BASE + 0x40_0000,
        pbit_size: bytes.len() as u32,
    };
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
    let icap = soc.handles.icap.clone();
    soc.core.wait_until(100_000, || !icap.busy()).unwrap();
    assert_eq!(
        soc.handles.icap.words_consumed(),
        bytes.len() as u64 / 4,
        "every bitstream word reached the ICAP exactly once"
    );
}
