//! Fault injection: corrupted, truncated, mis-targeted and mis-sized
//! bitstreams; traffic during decoupling; bus errors. A DPR controller
//! that only works on the happy path is not a controller.

use rvcap_repro::accel::library::filter_library;
use rvcap_repro::accel::{FilterKind, Image};
use rvcap_repro::core::drivers::{DmaMode, ReconfigModule, RvCapDriver};
use rvcap_repro::core::system::{RvCapSoc, SocBuilder};
use rvcap_repro::fabric::bitstream::BitstreamBuilder;
use rvcap_repro::fabric::resources::Resources;
use rvcap_repro::fabric::rm::RmImage;
use rvcap_repro::fabric::rp::RpGeometry;
use rvcap_repro::soc::map::DDR_BASE;

const DIM: usize = 16;
const STAGE: u64 = DDR_BASE + 0x40_0000;

fn rig() -> (RvCapSoc, RmImage) {
    let geometry = RpGeometry::scaled(1, 0, 0);
    let library = filter_library(&geometry, DIM, DIM);
    let img = library.by_name("Sobel").unwrap().clone();
    let soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .build();
    (soc, img)
}

fn stage_and_reconfig(soc: &mut RvCapSoc, bytes: &[u8]) {
    soc.handles.ddr.write_bytes(STAGE, bytes);
    let module = ReconfigModule {
        name: "X".into(),
        rm_number: 0,
        start_address: STAGE,
        pbit_size: bytes.len() as u32,
    };
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
    // Bounded settle: a truncated stream legitimately leaves the ICAP
    // mid-load (waiting for words that never come), so don't insist on
    // idle — just give the trailer time to drain.
    let icap = soc.handles.icap.clone();
    for _ in 0..512 {
        if !icap.busy() {
            break;
        }
        soc.core.compute(16);
    }
}

#[test]
fn corrupted_bitstream_never_activates() {
    let (mut soc, img) = rig();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
    let mut bytes = bs.to_bytes();
    let n = bytes.len();
    bytes[n / 3] ^= 0x80;
    stage_and_reconfig(&mut soc, &bytes);
    assert!(!soc.handles.icap.last_load().unwrap().crc_ok);
    assert_eq!(soc.handles.icap.abort_count(), 1);
    assert_eq!(soc.handles.rm_hosts[0].active_module(), None);
}

#[test]
fn corrupt_load_disables_previously_working_module() {
    let (mut soc, img) = rig();
    let good = BitstreamBuilder::kintex7()
        .partial(soc.handles.rps[0].far_base, &img.payload)
        .to_bytes();
    stage_and_reconfig(&mut soc, &good);
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("Sobel")
    );
    // Now a corrupted reload: the partition must go dark, not keep
    // the stale function silently.
    let mut bad = good.clone();
    bad[good.len() / 2] ^= 0x01;
    stage_and_reconfig(&mut soc, &bad);
    assert_eq!(soc.handles.rm_hosts[0].active_module(), None);
    // And a good reload recovers it.
    stage_and_reconfig(&mut soc, &good);
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("Sobel")
    );
}

#[test]
fn wrong_device_bitstream_rejected_before_any_frame() {
    let (mut soc, img) = rig();
    let writes_before = soc.handles.config_mem.total_writes();
    let bs = BitstreamBuilder::new(0x0BAD_CAFE).partial(soc.handles.rps[0].far_base, &img.payload);
    stage_and_reconfig(&mut soc, &bs.to_bytes());
    assert_eq!(soc.handles.icap.abort_count(), 1);
    assert_eq!(
        soc.handles.config_mem.total_writes(),
        writes_before,
        "no frame may be written on an IDCODE mismatch"
    );
}

#[test]
fn truncated_bitstream_leaves_partition_inactive() {
    let (mut soc, img) = rig();
    let full = BitstreamBuilder::kintex7()
        .partial(soc.handles.rps[0].far_base, &img.payload)
        .to_bytes();
    let cut = &full[..full.len() / 2];
    stage_and_reconfig(&mut soc, cut);
    // The ICAP never saw DESYNC: still mid-load (busy would need more
    // words), and nothing activated.
    assert_eq!(soc.handles.rm_hosts[0].active_module(), None);
}

#[test]
fn bitstream_for_a_different_partition_does_not_activate_this_one() {
    let (mut soc, img) = rig();
    // Valid bitstream, wrong FAR (a region outside RP0).
    let far = soc.handles.rps[0].far_base + 5000;
    let bs = BitstreamBuilder::kintex7().partial(far, &img.payload);
    stage_and_reconfig(&mut soc, &bs.to_bytes());
    let rec = soc.handles.icap.last_load().unwrap();
    assert!(rec.crc_ok, "the load itself is valid");
    assert_eq!(soc.handles.rm_hosts[0].active_module(), None);
}

#[test]
fn decoupled_partition_blocks_but_preserves_in_flight_data() {
    let (mut soc, img) = rig();
    let good = BitstreamBuilder::kintex7()
        .partial(soc.handles.rps[0].far_base, &img.payload)
        .to_bytes();
    stage_and_reconfig(&mut soc, &good);

    // Start an acceleration run, then decouple mid-flight.
    let input = Image::noise(DIM, DIM, 3);
    let in_addr = DDR_BASE + 0x30_0000;
    let out_addr = DDR_BASE + 0x38_0000;
    soc.handles.ddr.write_bytes(in_addr, input.as_bytes());

    // Program the accelerator DMA manually but decouple before the
    // stream drains: beats must be *held*, not dropped.
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    use rvcap_repro::core::dma::*;
    use rvcap_repro::soc::map::DMA_BASE;
    driver.select_icap(&mut soc.core, false);
    soc.core
        .write_reg(DMA_BASE + S2MM_DMACR, CR_RS | CR_IOC_IRQ_EN);
    use rvcap_repro::soc::map::{IRQ_DMA_S2MM, PLIC_BASE, PLIC_ENABLE};
    let en = soc.core.read_reg(PLIC_BASE + PLIC_ENABLE);
    soc.core
        .write_reg(PLIC_BASE + PLIC_ENABLE, en | (1 << IRQ_DMA_S2MM));
    soc.core.write_reg(DMA_BASE + S2MM_DA, out_addr as u32);
    soc.core
        .write_reg(DMA_BASE + S2MM_DA_MSB, (out_addr >> 32) as u32);
    soc.core
        .write_reg(DMA_BASE + S2MM_LENGTH, (DIM * DIM) as u32);
    soc.core.write_reg(DMA_BASE + MM2S_DMACR, CR_RS);
    soc.core.write_reg(DMA_BASE + MM2S_SA, in_addr as u32);
    soc.core
        .write_reg(DMA_BASE + MM2S_SA_MSB, (in_addr >> 32) as u32);
    soc.core
        .write_reg(DMA_BASE + MM2S_LENGTH, (DIM * DIM) as u32);
    // Let a few beats through, then decouple for a while.
    soc.core.compute(40);
    driver.decouple_accel(&mut soc.core, true);
    soc.core.compute(2000);
    driver.decouple_accel(&mut soc.core, false);
    // The stream resumes and the output is still exactly golden.
    let plic = soc.handles.plic.clone();
    soc.core
        .wait_until(1_000_000, || {
            plic.is_pending(rvcap_repro::soc::map::IRQ_DMA_S2MM)
        })
        .unwrap();
    // The IOC raises when the final posted write is *issued*; give the
    // DDR write pipe its few cycles to commit (a real handler's
    // claim/complete path covers this many times over).
    soc.core.compute(64);
    assert_eq!(
        soc.handles.ddr.read_bytes(out_addr, DIM * DIM),
        FilterKind::Sobel.golden(&input).as_bytes(),
        "decoupling must stall, never corrupt"
    );
}

#[test]
fn stalled_wait_returns_report_instead_of_panicking() {
    let (mut soc, img) = rig();
    let good = BitstreamBuilder::kintex7()
        .partial(soc.handles.rps[0].far_base, &img.payload)
        .to_bytes();
    stage_and_reconfig(&mut soc, &good);

    // Start an acceleration transfer, then decouple the partition and
    // *leave* it decoupled: the S2MM completion interrupt can never
    // fire, so the wait must give up at its limit — with a diagnosis,
    // not a panic.
    let input = Image::noise(DIM, DIM, 3);
    let in_addr = DDR_BASE + 0x30_0000;
    let out_addr = DDR_BASE + 0x38_0000;
    soc.handles.ddr.write_bytes(in_addr, input.as_bytes());
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    use rvcap_repro::core::dma::*;
    use rvcap_repro::soc::map::DMA_BASE;
    driver.select_icap(&mut soc.core, false);
    soc.core
        .write_reg(DMA_BASE + S2MM_DMACR, CR_RS | CR_IOC_IRQ_EN);
    {
        use rvcap_repro::soc::map::{IRQ_DMA_S2MM, PLIC_BASE, PLIC_ENABLE};
        let en = soc.core.read_reg(PLIC_BASE + PLIC_ENABLE);
        soc.core
            .write_reg(PLIC_BASE + PLIC_ENABLE, en | (1 << IRQ_DMA_S2MM));
    }
    soc.core.write_reg(DMA_BASE + S2MM_DA, out_addr as u32);
    soc.core
        .write_reg(DMA_BASE + S2MM_DA_MSB, (out_addr >> 32) as u32);
    soc.core
        .write_reg(DMA_BASE + S2MM_LENGTH, (DIM * DIM) as u32);
    soc.core.write_reg(DMA_BASE + MM2S_DMACR, CR_RS);
    soc.core.write_reg(DMA_BASE + MM2S_SA, in_addr as u32);
    soc.core
        .write_reg(DMA_BASE + MM2S_SA_MSB, (in_addr >> 32) as u32);
    driver.decouple_accel(&mut soc.core, true);
    soc.core
        .write_reg(DMA_BASE + MM2S_LENGTH, (DIM * DIM) as u32);

    let plic = soc.handles.plic.clone();
    let start = soc.core.now();
    let report = soc
        .core
        .wait_until(50_000, || {
            plic.is_pending(rvcap_repro::soc::map::IRQ_DMA_S2MM)
        })
        .unwrap_err();
    assert_eq!(report.limit, 50_000);
    assert_eq!(report.start, start);
    assert!(report.cycle >= start + 50_000, "gave up early");
    assert!(
        report.busy.iter().any(|n| n.contains("dma")),
        "the stalled DMA should be reported busy, got {:?}",
        report.busy
    );
    let rendered = report.to_string();
    assert!(rendered.contains("stalled"), "unhelpful report: {rendered}");

    // The stall is recoverable: recouple and the transfer completes.
    driver.decouple_accel(&mut soc.core, false);
    soc.core
        .wait_until(1_000_000, || {
            plic.is_pending(rvcap_repro::soc::map::IRQ_DMA_S2MM)
        })
        .unwrap();
    soc.core.compute(64);
    assert_eq!(
        soc.handles.ddr.read_bytes(out_addr, DIM * DIM),
        FilterKind::Sobel.golden(&input).as_bytes(),
        "recoupling must resume the stalled stream losslessly"
    );
}

#[test]
fn cpu_bus_error_on_unmapped_address() {
    let (mut soc, _) = rig();
    let err = soc.core.try_mmio_read(0x6000_0000, 4).unwrap_err();
    assert_eq!(err.addr, 0x6000_0000);
    // The system remains usable afterwards.
    let v = soc
        .core
        .mmio_read(rvcap_repro::soc::map::CLINT_BASE + 0xBFF8, 8);
    assert!(v < u64::MAX);
}

#[test]
fn oversized_module_rejected_by_partition_check() {
    let (soc, _) = rig();
    let rp = &soc.handles.rps[0];
    let hungry = RmImage::synthesize("HUNGRY", rp.frames(), Resources::new(100_000, 0, 0, 0));
    assert!(
        !rp.accepts(&hungry),
        "a module larger than the partition must not be accepted"
    );
}
