//! Tier-1 guards for the unified register-map layer.
//!
//! Two invariants the refactor introduced and must keep:
//!
//! 1. `REGISTERS.md` is generated, not hand-maintained — the checked-in
//!    file must match what the registry renders today.
//! 2. The paper experiments drive the bus cleanly: across every paper
//!    rig, neither controller trips a crossbar decode error or a
//!    register-policy violation (unmapped, misaligned, RO write, WO
//!    read, overwide). A violation would mean a driver and a device
//!    disagree about the map — exactly what one source of truth
//!    forbids.

use rvcap_bench::{paper_soc, runner};
use rvcap_repro::core::drivers::DmaMode;
use rvcap_repro::fabric::rp::RpGeometry;

#[test]
fn registers_md_is_current() {
    let checked_in = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/REGISTERS.md"))
        .expect("REGISTERS.md is checked in at the repo root");
    let rendered = rvcap_repro::core::registry::to_markdown();
    assert_eq!(
        checked_in, rendered,
        "REGISTERS.md is stale — regenerate with \
         `cargo run --release -p rvcap-bench --bin regs_md`"
    );
}

#[test]
fn paper_rigs_decode_cleanly() {
    let geometries = [
        RpGeometry::paper_rp(),
        RpGeometry::scaled(2, 0, 0),
        RpGeometry::scaled(8, 2, 1),
    ];
    for g in geometries {
        let rv = runner::reconfigure_rvcap(
            paper_soc::rig_with_geometry(g.clone()),
            DmaMode::NonBlocking,
        );
        let a = runner::mmio_audit(&rv.soc);
        assert_eq!(a.violations(), 0, "RV-CAP run on {g:?}: {a:?}");
        assert_eq!(a.unmapped, 0, "crossbar decode errors on {g:?}");
        assert!(
            a.reads > 0 && a.writes > 0,
            "audit counted nothing on {g:?}"
        );

        let hw = runner::reconfigure_hwicap(paper_soc::rig_with_geometry(g.clone()), 16);
        let a = runner::mmio_audit(&hw.soc);
        assert_eq!(a.violations(), 0, "HWICAP run on {g:?}: {a:?}");
        assert_eq!(a.unmapped, 0, "crossbar decode errors on {g:?}");
    }
}

#[test]
fn blocking_mode_decodes_cleanly_too() {
    let rv = runner::reconfigure_rvcap(
        paper_soc::rig_with_geometry(RpGeometry::scaled(2, 0, 0)),
        DmaMode::Blocking,
    );
    let a = runner::mmio_audit(&rv.soc);
    assert_eq!(a.violations(), 0, "blocking-mode RV-CAP run: {a:?}");
}
