//! Replay parity: `checkpoint → restore into a fresh rig → continue`
//! must be **bit-identical** to the uninterrupted run — same cycles,
//! same component state, same MMIO audits, same sanitizer verdicts,
//! same tick accounting — under every kernel scheduler mode.
//!
//! This is the proof obligation behind warm-boot forking (the
//! hostbench builds one SoC per rig, checkpoints it post-boot, and
//! forks every measurement from that snapshot): if a forked run could
//! drift from a cold-booted one by even a cycle, the benchmark numbers
//! would measure the forking, not the hardware.
//!
//! On a parity failure the harness does not stop at "states differ":
//! it binary-searches the first divergent cycle with
//! [`rvcap_sim::bisect_divergence`] and writes the report to
//! `target/replay-divergence-report.txt`, which CI uploads as an
//! artifact.

use rvcap_bench::hostbench::SchedulerMode;
use rvcap_bench::paper_soc::{self, PaperRig};
use rvcap_repro::core::drivers::{DmaMode, RvCapDriver};
use rvcap_repro::core::system::SocBuilder;
use rvcap_repro::fabric::rp::RpGeometry;
use rvcap_repro::sim::{bisect_divergence, Cycle, SimState};
use rvcap_repro::soc::cpu::SocState;

/// Small sweep geometry: full reconfiguration in ~11 k cycles, cheap
/// enough to run under the naive reference schedule in debug builds.
fn small_rp() -> RpGeometry {
    RpGeometry::scaled(2, 0, 0)
}

/// Build the pinned rig under `mode`, sanitizer attached (so protocol
/// observation state is inside the parity check too).
fn mk_rig(mode: SchedulerMode) -> PaperRig {
    let mut rig = paper_soc::rig_with_builder(SocBuilder::new().with_sanitizer(), small_rp());
    mode.apply(&mut rig.soc.core.sim);
    rig
}

/// Program a full DMA→ICAP reconfiguration transfer through raw
/// driver primitives (each a blocking MMIO sequence, so the host is
/// quiescent afterwards) without waiting for completion — the stream
/// is then in flight and `compute` advances it.
fn program_transfer(rig: &mut PaperRig) {
    let d = RvCapDriver::new(0, rig.soc.handles.plic.clone());
    d.decouple_accel(&mut rig.soc.core, true);
    d.select_icap(&mut rig.soc.core, true);
    d.dma_start(&mut rig.soc.core);
    d.dma_config(&mut rig.soc.core, DmaMode::NonBlocking);
    d.dma_write_stream(
        &mut rig.soc.core,
        rig.module.start_address,
        rig.module.pbit_size,
    );
}

/// Cycles to advance past the programming prologue so the checkpoint
/// lands mid-stream: DMA bursts in flight, ICAP consuming, FIFOs
/// part-full.
const MID_STREAM: Cycle = 2_000;

/// Continuation horizon: covers stream completion, the ICAP trailer,
/// the completion interrupt pending at the PLIC, and an idle tail.
const HORIZON: Cycle = 12_000;

/// Fork: build a fresh structurally-identical rig, restore `base` into
/// it, advance `t` cycles, checkpoint.
fn fork_run(base: &SocState, mode: SchedulerMode, t: Cycle) -> SocState {
    let mut rig = mk_rig(mode);
    rig.soc.core.restore(base).expect("restore into fresh rig");
    assert_eq!(rig.soc.core.now(), base.sim.cycle, "restore sets the clock");
    rig.soc.core.compute(t);
    rig.soc.core.checkpoint().expect("checkpoint forked run")
}

/// Straight re-execution: build a fresh rig, re-run the deterministic
/// prologue to the base cycle, advance `t` cycles, checkpoint.
fn straight_run(base_cycle: Cycle, mode: SchedulerMode, t: Cycle) -> SocState {
    let mut rig = mk_rig(mode);
    program_transfer(&mut rig);
    let c0 = rig.soc.core.now();
    assert!(c0 <= base_cycle, "prologue overshot the base cycle");
    rig.soc.core.compute(base_cycle - c0);
    rig.soc.core.compute(t);
    rig.soc.core.checkpoint().expect("checkpoint straight run")
}

/// Assert parity; on failure, bisect the first divergent cycle and
/// write the CI artifact before panicking.
fn assert_parity(context: &str, mode: SchedulerMode, base: &SocState, horizon: Cycle) {
    let straight = straight_run(base.sim.cycle, mode, horizon);
    let replay = fork_run(base, mode, horizon);
    if let Some(diff) = straight.parity_diff(&replay) {
        let base_clone = base.clone();
        let probe_straight = |b: &SimState, t: Cycle| straight_run(b.cycle, mode, t).sim;
        let probe_replay = move |_b: &SimState, t: Cycle| fork_run(&base_clone, mode, t).sim;
        let report = bisect_divergence(&base.sim, horizon, probe_straight, probe_replay);
        let rendered = match &report {
            Some(r) => r.render(),
            None => format!(
                "parity failed at the horizon but the bisect probes agree \
                 (flaky probe construction?): {diff}"
            ),
        };
        let path = std::path::Path::new("target").join("replay-divergence-report.txt");
        let body = format!(
            "context: {context} (scheduler {})\n\n{rendered}\n",
            mode.name()
        );
        let _ = std::fs::write(&path, &body);
        panic!(
            "replay parity failed [{context}, {}]: {diff}\n{rendered}\n(report: {})",
            mode.name(),
            path.display()
        );
    }
}

/// The full paper SoC checkpoints completely: every registered
/// component implements `save_state`, and the checkpoint restores back
/// into the very simulator it came from.
#[test]
fn full_soc_checkpoint_is_complete() {
    let mut rig = paper_soc::rig_with_builder(SocBuilder::new().with_sanitizer(), small_rp());
    let state = rig.soc.core.checkpoint().expect("every component saves");
    assert!(
        state.sim.components.len() >= 19,
        "expected the full roster, got {}",
        state.sim.components.len()
    );
    rig.soc.core.restore(&state).expect("self-restore");
    let again = rig.soc.core.checkpoint().expect("checkpoint after restore");
    assert_eq!(state.parity_diff(&again), None);
}

/// Restoring into a structurally different rig is refused, not
/// silently accepted.
#[test]
fn restore_rejects_mismatched_structure() {
    let rig = paper_soc::rig_with_geometry(small_rp());
    let state = rig.soc.core.checkpoint().expect("checkpoint");
    // Two partitions → more components than the checkpoint carries.
    let mut other = paper_soc::rig_with_rps(
        SocBuilder::new(),
        vec![small_rp(), RpGeometry::scaled(1, 0, 0)],
    );
    assert!(other.soc.core.restore(&state).is_err());
}

/// A cycle-0 fork replays the *entire* reconfiguration bit-identically
/// under every scheduler mode: same Td/Tr ticks, same final state.
#[test]
fn boot_checkpoint_replays_full_reconfiguration() {
    for mode in SchedulerMode::ALL {
        // Straight run.
        let mut a = mk_rig(mode);
        let base = a.soc.core.checkpoint().expect("boot checkpoint");
        let da = RvCapDriver::new(0, a.soc.handles.plic.clone());
        let module = a.module.clone();
        let ta = da.init_reconfig_process(&mut a.soc.core, &module, DmaMode::NonBlocking);
        let end_a = a.soc.core.checkpoint().expect("straight end");

        // Forked run: fresh structure, restored boot state, same driver.
        let mut b = mk_rig(mode);
        b.soc.core.restore(&base).expect("restore boot state");
        let db = RvCapDriver::new(0, b.soc.handles.plic.clone());
        let tb = db.init_reconfig_process(&mut b.soc.core, &module, DmaMode::NonBlocking);
        let end_b = b.soc.core.checkpoint().expect("replay end");

        assert_eq!(ta.td_ticks, tb.td_ticks, "Td under {}", mode.name());
        assert_eq!(ta.tr_ticks, tb.tr_ticks, "Tr under {}", mode.name());
        assert_eq!(
            end_a.parity_diff(&end_b),
            None,
            "boot-fork parity under {}",
            mode.name()
        );
        let san = a.soc.handles.sanitizer.as_ref().expect("sanitizer");
        assert_eq!(san.violation_count(), 0);
    }
}

/// The tentpole property: a checkpoint taken *mid-DMA-stream* (bursts
/// in flight, FIFOs part-full, ICAP mid-bitstream) restores into a
/// fresh rig and continues bit-identically to the uninterrupted run —
/// under all five scheduler modes.
#[test]
fn mid_stream_checkpoint_replays_bit_identical() {
    for mode in SchedulerMode::ALL {
        let mut rig = mk_rig(mode);
        program_transfer(&mut rig);
        rig.soc.core.compute(MID_STREAM);
        let base = rig.soc.core.checkpoint().expect("mid-stream checkpoint");
        // The checkpoint really is mid-stream: the ICAP has consumed
        // some of the bitstream but not all of it.
        let consumed = rig.soc.handles.icap.words_consumed();
        assert!(consumed > 0, "stream not started under {}", mode.name());
        assert!(
            consumed < (rig.module.pbit_size / 4) as u64,
            "stream already done under {}",
            mode.name()
        );
        assert_parity("mid-stream fork", mode, &base, HORIZON);
    }
}

/// Checkpoints are scheduler-portable: a state captured under one mode
/// restores under any other and produces the same simulated
/// observables (scheduler internals are rebuilt cold from component
/// hints). Executed-tick accounting is schedule policy — naive ticks
/// idle components that the hint-driven modes skip — so the cross-mode
/// comparison strips it and checks everything a program can observe:
/// the cycle, every component's state blob, the sanitizer verdict.
#[test]
fn checkpoint_is_scheduler_portable() {
    fn strip_schedule_accounting(mut s: SocState) -> SocState {
        for c in &mut s.sim.components {
            c.ticks = 0;
            c.registered_at = 0;
        }
        s
    }
    let mut rig = mk_rig(SchedulerMode::ActiveSetBatched);
    program_transfer(&mut rig);
    rig.soc.core.compute(MID_STREAM);
    let base = rig.soc.core.checkpoint().expect("checkpoint");
    let reference = strip_schedule_accounting(fork_run(&base, SchedulerMode::Naive, HORIZON));
    for mode in SchedulerMode::ALL {
        let end = strip_schedule_accounting(fork_run(&base, mode, HORIZON));
        assert_eq!(
            reference.parity_diff(&end),
            None,
            "cross-scheduler parity, naive vs {}",
            mode.name()
        );
    }
}

/// A rig with the VCD recorder attached checkpoints too, and the
/// forked run renders the *same waveform* as the straight run — the
/// dump text survives the checkpoint and continues seamlessly.
#[test]
fn vcd_waveform_survives_fork() {
    let build = || {
        let mut rig = paper_soc::rig_with_builder(SocBuilder::new().with_vcd(), small_rp());
        SchedulerMode::ActiveSetBatched.apply(&mut rig.soc.core.sim);
        rig
    };
    let mut a = build();
    program_transfer(&mut a);
    a.soc.core.compute(MID_STREAM);
    let base = a.soc.core.checkpoint().expect("vcd rig checkpoint");
    a.soc.core.compute(HORIZON);
    let straight_dump = a.soc.handles.vcd.as_ref().unwrap().render();

    let mut b = build();
    b.soc.core.restore(&base).expect("restore vcd rig");
    b.soc.core.compute(HORIZON);
    let forked_dump = b.soc.handles.vcd.as_ref().unwrap().render();
    assert!(!straight_dump.is_empty());
    assert_eq!(straight_dump, forked_dump);
}
