//! System-level bus-sanitizer coverage: the strict mode the tier-1
//! gate runs under (`RVCAP_STRICT=1` in `scripts/check.sh`).
//!
//! `SocBuilder::with_sanitizer()` puts every MM link and every stream
//! channel of the Fig. 1/Fig. 2 system under protocol watch. These
//! tests drive both reconfiguration paths *and* the acceleration
//! datapath (stream switch → isolators → reconfigurable module →
//! S2MM) end to end and assert the bus stays protocol-clean, with the
//! violation count visible through every reporting surface the
//! sanitizer feeds: the handle itself, [`rvcap_sim` kernel stats] and
//! the merged MMIO audit.

use rvcap_repro::accel::library::filter_library;
use rvcap_repro::accel::{run_accelerator, FilterKind, Image};
use rvcap_repro::core::drivers::{DmaMode, HwIcapDriver, ReconfigModule, RvCapDriver};
use rvcap_repro::core::system::SocBuilder;
use rvcap_repro::fabric::bitstream::BitstreamBuilder;
use rvcap_repro::fabric::rp::RpGeometry;
use rvcap_repro::soc::map::DDR_BASE;

const DIM: usize = 24;

/// The builder only pays for the sanitizer when asked, and when asked
/// it covers the whole bus: all fourteen MM links (two channels each)
/// plus the stream fabric.
#[test]
fn builder_flag_controls_sanitizer_and_covers_the_bus() {
    // Without the flag the builder only attaches a sanitizer when the
    // strict-mode environment variable asks for one (as the tier-1
    // gate does), so the default build is free exactly when strict
    // mode is off.
    let strict = std::env::var("RVCAP_STRICT").is_ok_and(|v| !v.is_empty() && v != "0");
    let plain = SocBuilder::new().build();
    assert_eq!(plain.handles.sanitizer.is_some(), strict);

    let soc = SocBuilder::new().with_sanitizer().build();
    let san = soc.handles.sanitizer.as_ref().expect("sanitizer attached");
    // 14 MM links × (req + resp) = 28, plus mm2s/s2mm/switch.icap/
    // icap.in and three channels around the single RP.
    assert_eq!(san.watched_channels(), 35, "whole-bus coverage");
    assert_eq!(san.violation_count(), 0);
}

/// Reconfigure over the RV-CAP path, then stream an image through the
/// loaded accelerator — the full switch/isolator/RM datapath — with
/// every channel watched. Zero violations, on every surface.
#[test]
fn rvcap_reconfigure_and_accelerate_stay_protocol_clean() {
    let geometry = RpGeometry::scaled(1, 0, 0);
    let library = filter_library(&geometry, DIM, DIM);
    let median = library.by_name("Median").unwrap().clone();
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .with_sanitizer()
        .build();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &median.payload);
    let bytes = bs.to_bytes();
    let stage = DDR_BASE + 0x40_0000;
    soc.handles.ddr.write_bytes(stage, &bytes);
    let module = ReconfigModule {
        name: "Median".into(),
        rm_number: 0,
        start_address: stage,
        pbit_size: bytes.len() as u32,
    };
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
    let icap = soc.handles.icap.clone();
    soc.core.wait_until(100_000, || !icap.busy()).unwrap();

    let input = Image::noise(DIM, DIM, 1);
    let in_addr = DDR_BASE + 0x30_0000;
    let out_addr = DDR_BASE + 0x38_0000;
    soc.handles.ddr.write_bytes(in_addr, input.as_bytes());
    let plic = soc.handles.plic.clone();
    run_accelerator(
        &mut soc.core,
        &plic,
        0,
        in_addr,
        out_addr,
        (DIM * DIM) as u32,
    );
    assert_eq!(
        soc.handles.ddr.read_bytes(out_addr, DIM * DIM),
        FilterKind::Median.golden(&input).as_bytes()
    );

    let san = soc.handles.sanitizer.as_ref().unwrap();
    assert_eq!(
        san.violation_count(),
        0,
        "protocol violations: {:?}",
        san.violations()
    );
    assert_eq!(soc.core.sim.kernel_stats().protocol_violations, 0);
    assert_eq!(soc.core.sim.mmio_audit().protocol, 0);
    assert_eq!(soc.core.sim.mmio_audit().violations(), 0);
}

/// The HWICAP baseline path (word-by-word MMIO feeding) is also clean
/// under watch.
#[test]
fn hwicap_path_stays_protocol_clean() {
    let geometry = RpGeometry::scaled(1, 0, 0);
    let library = filter_library(&geometry, DIM, DIM);
    let gaussian = library.by_name("Gaussian").unwrap().clone();
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(library)
        .with_sanitizer()
        .build();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &gaussian.payload);
    let bytes = bs.to_bytes();
    let stage = DDR_BASE + 0x40_0000;
    soc.handles.ddr.write_bytes(stage, &bytes);
    let module = ReconfigModule {
        name: "Gaussian".into(),
        rm_number: 0,
        start_address: stage,
        pbit_size: bytes.len() as u32,
    };
    let ddr = soc.handles.ddr.clone();
    HwIcapDriver::new().reconfigure_rp(&mut soc.core, &ddr, &module);
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("Gaussian")
    );
    let san = soc.handles.sanitizer.as_ref().unwrap();
    assert_eq!(
        san.violation_count(),
        0,
        "protocol violations: {:?}",
        san.violations()
    );
}

/// The compressed-loader variant (extension study) adds the RLE
/// decompressor channel to the watch list and stays clean too.
#[test]
fn compressed_loader_path_stays_protocol_clean() {
    use rvcap_repro::fabric::compress;
    use rvcap_repro::fabric::resources::Resources;
    use rvcap_repro::fabric::rm::{RmImage, RmLibrary};

    let geometry = RpGeometry::scaled(1, 0, 0);
    let img = RmImage::synthesize("Z", geometry.frames(), Resources::ZERO);
    let mut lib = RmLibrary::new();
    lib.register_image(img.clone());
    let mut soc = SocBuilder::new()
        .with_rps(vec![geometry])
        .with_library(lib)
        .with_compressed_loader()
        .with_sanitizer()
        .build();
    let bs = BitstreamBuilder::kintex7().partial(soc.handles.rps[0].far_base, &img.payload);
    let compressed = compress::compress(bs.words());
    let mut bytes = Vec::with_capacity(compressed.len() * 4);
    for w in &compressed {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let stage = DDR_BASE + 0x40_0000;
    soc.handles.ddr.write_bytes(stage, &bytes);
    let module = ReconfigModule {
        name: "Z".into(),
        rm_number: 0,
        start_address: stage,
        pbit_size: bytes.len() as u32,
    };
    let driver = RvCapDriver::new(0, soc.handles.plic.clone());
    driver.init_reconfig_process(&mut soc.core, &module, DmaMode::NonBlocking);
    // The DMA finishes with the compressed stream while the ICAP is
    // still expanding — wait on the RP status register.
    assert!(driver.wait_for_module(&mut soc.core, 1, 10_000));
    assert_eq!(
        soc.handles.rm_hosts[0].active_module().as_deref(),
        Some("Z")
    );

    let san = soc.handles.sanitizer.as_ref().unwrap();
    assert_eq!(san.watched_channels(), 36, "rle.in joins the watch list");
    assert_eq!(
        san.violation_count(),
        0,
        "protocol violations: {:?}",
        san.violations()
    );
}
